"""Segment-embedding cache.

Entity groups repeat across a corpus — different documents about the same
story produce identical maximal co-occurrence groups — so the NE
component's dominant cost (Fig 7) can be amortized by caching ``G*``
results keyed by the group's exact label→sources mapping.  Embeddings are
immutable, so sharing them is safe.

The cache wraps any :class:`SegmentEmbedder` (LCAG, TreeEmb, or the
disambiguating decorator), preserving the protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.ancestor_graph import CommonAncestorGraph
from repro.core.document_embedding import SegmentEmbedder

_CacheKey = tuple[tuple[str, frozenset[str]], ...]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when unused)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


@dataclass
class CachingEmbedder:
    """LRU-caching decorator around a segment embedder.

    ``None`` results (unembeddable groups) are cached too — retrying them
    is exactly as expensive as a successful search.
    """

    inner: SegmentEmbedder
    max_entries: int = 10_000
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._cache: OrderedDict[_CacheKey, CommonAncestorGraph | None] = (
            OrderedDict()
        )

    @staticmethod
    def _key(label_sources: Mapping[str, frozenset[str]]) -> _CacheKey:
        return tuple(sorted(
            (label, frozenset(sources))
            for label, sources in label_sources.items()
        ))

    def embed(
        self, label_sources: Mapping[str, frozenset[str]]
    ) -> CommonAncestorGraph | None:
        """Embed one group, via the cache."""
        if not label_sources:
            return None
        key = self._key(label_sources)
        if key in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        self.stats.misses += 1
        result = self.inner.embed(label_sources)
        self._cache[key] = result
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return result

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self._cache.clear()

    @property
    def size(self) -> int:
        """Number of cached entries."""
        return len(self._cache)
