"""Segment-embedding cache.

Entity groups repeat across a corpus — different documents about the same
story produce identical maximal co-occurrence groups — so the NE
component's dominant cost (Fig 7) can be amortized by caching ``G*``
results keyed by the group's exact label→sources mapping.  Embeddings are
immutable, so sharing them is safe.

The cache wraps any :class:`SegmentEmbedder` (LCAG, TreeEmb, or the
disambiguating decorator), preserving the protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.ancestor_graph import CommonAncestorGraph
from repro.core.document_embedding import SegmentEmbedder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.deadline import Deadline

#: Canonical identity of one entity group: its sorted label → S(l) items.
#: Shared by the LRU cache and the corpus-wide dedup planner
#: (:mod:`repro.parallel.planner`) so both agree on group equality.
GroupKey = tuple[tuple[str, frozenset[str]], ...]

_CacheKey = GroupKey


def group_key(label_sources: Mapping[str, frozenset[str]]) -> GroupKey:
    """The canonical, order-insensitive key of one entity group.

    Labels are unique within a mapping, so sorting the items never has to
    compare the (unorderable) source sets.
    """
    return tuple(sorted(label_sources.items()))


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when unused)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set into this one.

        Used by the parallel merge stage to aggregate per-worker (and
        planner-synthesized) counters into the engine's cache.
        """
        self.hits += other.hits
        self.misses += other.misses

    def as_dict(self) -> dict[str, float]:
        """The counters as a plain dict (stats-endpoint helper)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CachingEmbedder:
    """LRU-caching decorator around a segment embedder.

    ``None`` results (unembeddable groups) are cached too — retrying them
    is exactly as expensive as a successful search.
    """

    inner: SegmentEmbedder
    max_entries: int = 10_000
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._cache: OrderedDict[_CacheKey, CommonAncestorGraph | None] = (
            OrderedDict()
        )

    _key = staticmethod(group_key)

    def embed(
        self,
        label_sources: Mapping[str, frozenset[str]],
        deadline: "Deadline | None" = None,
    ) -> CommonAncestorGraph | None:
        """Embed one group, via the cache.

        A hit costs no search, so the ``deadline`` only reaches the inner
        embedder on a miss; an expired deadline propagates and the miss is
        not cached (partial results must never poison the cache).
        """
        if not label_sources:
            return None
        key = self._key(label_sources)
        if key in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        self.stats.misses += 1
        if deadline is None:
            result = self.inner.embed(label_sources)
        else:
            result = self.inner.embed(label_sources, deadline=deadline)
        self._cache[key] = result
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return result

    def seed(
        self, key: GroupKey, result: CommonAncestorGraph | None
    ) -> None:
        """Insert a precomputed result without touching the counters.

        The parallel merge stage seeds the parent's cache with the group
        results the workers computed, so post-indexing queries hit warm.
        """
        self._cache[key] = result
        self._cache.move_to_end(key)
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self._cache.clear()

    @property
    def size(self) -> int:
        """Number of cached entries."""
        return len(self._cache)
