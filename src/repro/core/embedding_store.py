"""Packed document-embedding and text arenas — the v3 zero-copy stores.

A heap engine keeps ``doc_id -> DocumentEmbedding`` and ``doc_id ->
text`` dicts: per-document Python object graphs that dominate resident
memory and load time at corpus scale.  The v3 format packs both into
flat arenas with an id-interned directory:

* **string table** — every string a graph can mention (node ids,
  labels, relation names) interned once into a single sorted table;
  everything below refers to strings by ``uint32`` slot.
* **node-count arena** — per document the directory stores a count and
  a range into two parallel ``uint32`` columns (node slot, BON term
  frequency).
* **graph arena** — each distinct ``G*`` graph encoded once as a
  compact binary record (slot-interned strings, packed edge structs,
  label paths as indices into the graph's own edge table) and
  deduplicated by encoded bytes; per document the directory stores
  ``uint32`` references into the unique-graph table.  Graphs are only
  touched by ``explain``/re-save, never by ranking, so they stay
  packed until a document is actually asked for.
* **text arena** — UTF-8 document texts, zlib-compressed in blocks of
  :data:`TEXT_BLOCK` documents.  Texts are a cold docstore (snippets
  and ``document_text`` only), so block compression trades a small
  on-demand decode for a multiple of on-disk/resident footprint.

:class:`PackedEmbeddingStore` / :class:`PackedTextStore` expose the
read-only ``Mapping`` face the engine consumes, decode lazily on first
access, cache decoded objects, and iterate in the engine's original
insertion order (preserved via the container's permutation column) so a
re-save writes records in the same order a heap engine would.
"""

from __future__ import annotations

import json
import struct
import zlib
from array import array
from collections.abc import Iterator, Mapping, Sequence

from repro.core.ancestor_graph import CommonAncestorGraph
from repro.core.document_embedding import DocumentEmbedding
from repro.kg.types import OrientedEdge

try:  # numpy only vectorises the offset pass; optional.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

TEXT_BLOCK = 16
_U32 = struct.Struct("<I")
_DIST = struct.Struct("<Id")
_EDGE = struct.Struct("<IIIBd")


def _offsets(lengths) -> Sequence[int]:
    """lengths column -> cumulative start offsets (len + 1 entries)."""
    if _np is not None:
        out = _np.zeros(len(lengths) + 1, dtype=_np.int64)
        _np.cumsum(_np.frombuffer(lengths, dtype=_np.uint32), out=out[1:])
        return out
    offsets = [0] * (len(lengths) + 1)
    for i, length in enumerate(lengths):
        offsets[i + 1] = offsets[i] + length
    return offsets


def _edge_key(edge: OrientedEdge):
    return (edge.source, edge.target, edge.relation, edge.forward, edge.weight)


# ----------------------------------------------------------------------
# Writer side.


def _graph_strings(embeddings: Mapping[str, DocumentEmbedding]) -> list[str]:
    """The sorted intern table covering every string any record needs."""
    strings: set[str] = set()
    for embedding in embeddings.values():
        strings.update(embedding.node_counts)
        for graph in embedding.graphs:
            strings.add(graph.root)
            strings.update(graph.labels)
            strings.update(graph.distances)
            strings.update(graph.nodes)
            for edge in graph.edges:
                strings.update((edge.source, edge.target, edge.relation))
            for label, (nodes, edges) in graph.label_paths.items():
                strings.add(label)
                strings.update(nodes)
                for edge in edges:
                    strings.update((edge.source, edge.target, edge.relation))
    return sorted(strings)


def _encode_graph(graph: CommonAncestorGraph, slot: dict[str, int]) -> bytes:
    """One ``G*`` as a self-contained binary record over the table.

    Field order inside the record follows the graph's own iteration
    order (labels tuple, distances/label_paths dict order) so decoding
    reproduces the exact dicts a heap engine would re-serialize —
    deduplication keys on these bytes, which makes it safe: identical
    bytes decode to indistinguishable graphs.
    """
    out = bytearray()
    out += _U32.pack(slot[graph.root])
    out += _U32.pack(len(graph.labels))
    for label in graph.labels:
        out += _U32.pack(slot[label])
    out += _U32.pack(len(graph.distances))
    for label, distance in graph.distances.items():
        out += _DIST.pack(slot[label], distance)
    nodes = sorted(graph.nodes)
    out += _U32.pack(len(nodes))
    for node in nodes:
        out += _U32.pack(slot[node])
    # One edge table per graph; the union edge set and every label
    # path reference it by index instead of repeating 21-byte records.
    table = sorted(
        set(graph.edges).union(
            *(edges for _, edges in graph.label_paths.values())
        ),
        key=_edge_key,
    )
    edge_index = {edge: i for i, edge in enumerate(table)}
    out += _U32.pack(len(table))
    for edge in table:
        out += _EDGE.pack(
            slot[edge.source],
            slot[edge.target],
            slot[edge.relation],
            1 if edge.forward else 0,
            edge.weight,
        )
    out += _U32.pack(len(graph.edges))
    for i in sorted(edge_index[edge] for edge in graph.edges):
        out += _U32.pack(i)
    out += _U32.pack(len(graph.label_paths))
    for label, (nodes, edges) in graph.label_paths.items():
        out += _U32.pack(slot[label])
        out += _U32.pack(len(nodes))
        for node in sorted(nodes):
            out += _U32.pack(slot[node])
        out += _U32.pack(len(edges))
        for i in sorted(edge_index[edge] for edge in edges):
            out += _U32.pack(i)
    return bytes(out)


def pack_embeddings(
    embeddings: Mapping[str, DocumentEmbedding],
    universe: tuple[str, ...],
) -> dict[str, bytes]:
    """Pack embeddings (sorted-universe order) into arena columns."""
    string_table = _graph_strings(embeddings)
    slot = {value: i for i, value in enumerate(string_table)}
    node_lengths = array("I")
    nodes = array("I")
    counts = array("I")
    graph_counts = array("I")
    graph_refs = array("I")
    unique_lengths = array("I")
    unique_blob = bytearray()
    unique_ref: dict[bytes, int] = {}
    for doc_id in universe:
        embedding = embeddings[doc_id]
        node_lengths.append(len(embedding.node_counts))
        for node, count in embedding.node_counts.items():
            nodes.append(slot[node])
            counts.append(count)
        graph_counts.append(len(embedding.graphs))
        for graph in embedding.graphs:
            record = _encode_graph(graph, slot)
            ref = unique_ref.get(record)
            if ref is None:
                ref = len(unique_ref)
                unique_ref[record] = ref
                unique_lengths.append(len(record))
                unique_blob += record
            graph_refs.append(ref)
    return {
        "nodestr": json.dumps(string_table, ensure_ascii=False).encode(
            "utf-8"
        ),
        "elen": node_lengths.tobytes(),
        "enodes": nodes.tobytes(),
        "ecounts": counts.tobytes(),
        "gcnt": graph_counts.tobytes(),
        "gref": graph_refs.tobytes(),
        "gtlen": unique_lengths.tobytes(),
        "graphs": bytes(unique_blob),
    }


def pack_texts(
    texts: Mapping[str, str], universe: tuple[str, ...]
) -> dict[str, bytes]:
    """Pack document texts into a block-compressed UTF-8 arena."""
    payloads = [texts.get(doc_id, "").encode("utf-8") for doc_id in universe]
    lengths = array("I", (len(payload) for payload in payloads))
    block_lengths = array("I")
    blocks = bytearray()
    for start in range(0, len(payloads), TEXT_BLOCK):
        compressed = zlib.compress(
            b"".join(payloads[start : start + TEXT_BLOCK]), 6
        )
        block_lengths.append(len(compressed))
        blocks += compressed
    return {
        "tlen": lengths.tobytes(),
        "blen": block_lengths.tobytes(),
        "blocks": bytes(blocks),
    }


# ----------------------------------------------------------------------
# Reader side.


class PackedEmbeddingStore(Mapping):
    """Read-only ``doc_id -> DocumentEmbedding`` over packed arenas.

    Decodes lazily (node counts from the interned columns, graphs from
    the binary records) and caches per document — plus per *unique*
    graph, so documents sharing a deduplicated ``G*`` share the decoded
    object too.  Iteration follows the engine's original insertion
    order so ``values()`` round-trips the v2 writer byte-for-byte.
    """

    def __init__(
        self,
        columns: Mapping[str, "memoryview | bytes"],
        universe: tuple[str, ...],
        index_of: dict[str, int],
        insertion_order: Sequence[str],
    ) -> None:
        self._universe = universe
        self._index_of = index_of
        self._insertion = insertion_order
        self._string_table: list[str] = json.loads(bytes(columns["nodestr"]))
        node_lengths = memoryview(columns["elen"]).cast("I")
        self._node_offsets = _offsets(node_lengths)
        self._nodes = memoryview(columns["enodes"]).cast("I")
        self._counts = memoryview(columns["ecounts"]).cast("I")
        graph_counts = memoryview(columns["gcnt"]).cast("I")
        self._ref_offsets = _offsets(graph_counts)
        self._refs = memoryview(columns["gref"]).cast("I")
        unique_lengths = memoryview(columns["gtlen"]).cast("I")
        self._unique_offsets = _offsets(unique_lengths)
        self._records = memoryview(columns["graphs"])
        self._cache: dict[str, DocumentEmbedding] = {}
        self._graph_cache: dict[int, CommonAncestorGraph] = {}

    def _read_refs(self, buffer, offset: int, count: int):
        table = self._string_table
        values = struct.unpack_from(f"<{count}I", buffer, offset)
        return [table[i] for i in values], offset + 4 * count

    def _decode_graph(self, ref: int) -> CommonAncestorGraph:
        graph = self._graph_cache.get(ref)
        if graph is not None:
            return graph
        buffer = self._records[
            int(self._unique_offsets[ref]) : int(self._unique_offsets[ref + 1])
        ]
        table = self._string_table
        (root_slot,) = _U32.unpack_from(buffer, 0)
        offset = 4
        (n_labels,) = _U32.unpack_from(buffer, offset)
        labels, offset = self._read_refs(buffer, offset + 4, n_labels)
        (n_dist,) = _U32.unpack_from(buffer, offset)
        offset += 4
        distances = {}
        for _ in range(n_dist):
            label_slot, distance = _DIST.unpack_from(buffer, offset)
            distances[table[label_slot]] = distance
            offset += _DIST.size
        (n_nodes,) = _U32.unpack_from(buffer, offset)
        nodes, offset = self._read_refs(buffer, offset + 4, n_nodes)
        (n_table,) = _U32.unpack_from(buffer, offset)
        offset += 4
        edge_table = []
        for _ in range(n_table):
            source, target, relation, forward, weight = _EDGE.unpack_from(
                buffer, offset
            )
            edge_table.append(
                OrientedEdge(
                    source=table[source],
                    target=table[target],
                    relation=table[relation],
                    forward=bool(forward),
                    weight=weight,
                )
            )
            offset += _EDGE.size
        (n_union,) = _U32.unpack_from(buffer, offset)
        offset += 4
        union = struct.unpack_from(f"<{n_union}I", buffer, offset)
        offset += 4 * n_union
        (n_paths,) = _U32.unpack_from(buffer, offset)
        offset += 4
        label_paths = {}
        for _ in range(n_paths):
            (label_slot,) = _U32.unpack_from(buffer, offset)
            (n_path_nodes,) = _U32.unpack_from(buffer, offset + 4)
            path_nodes, offset = self._read_refs(
                buffer, offset + 8, n_path_nodes
            )
            (n_path_edges,) = _U32.unpack_from(buffer, offset)
            offset += 4
            path_edges = struct.unpack_from(f"<{n_path_edges}I", buffer, offset)
            offset += 4 * n_path_edges
            label_paths[table[label_slot]] = (
                frozenset(path_nodes),
                frozenset(edge_table[i] for i in path_edges),
            )
        graph = CommonAncestorGraph(
            root=table[root_slot],
            labels=tuple(labels),
            distances=distances,
            nodes=frozenset(nodes),
            edges=frozenset(edge_table[i] for i in union),
            label_paths=label_paths,
        )
        self._graph_cache[ref] = graph
        return graph

    def _decode(self, doc_id: str, slot: int) -> DocumentEmbedding:
        start = int(self._node_offsets[slot])
        end = int(self._node_offsets[slot + 1])
        string_table = self._string_table
        nodes = self._nodes
        counts = self._counts
        node_counts = {
            string_table[nodes[j]]: counts[j] for j in range(start, end)
        }
        start = int(self._ref_offsets[slot])
        end = int(self._ref_offsets[slot + 1])
        graphs = tuple(
            self._decode_graph(self._refs[j]) for j in range(start, end)
        )
        return DocumentEmbedding(
            doc_id=doc_id, graphs=graphs, node_counts=node_counts
        )

    def __getitem__(self, doc_id: str) -> DocumentEmbedding:
        embedding = self._cache.get(doc_id)
        if embedding is not None:
            return embedding
        slot = self._index_of.get(doc_id)
        if slot is None:
            raise KeyError(doc_id)
        embedding = self._decode(doc_id, slot)
        self._cache[doc_id] = embedding
        return embedding

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._index_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._insertion)

    def __len__(self) -> int:
        return len(self._universe)

    def cached_count(self) -> int:
        """How many embeddings have been decoded so far (laziness probe)."""
        return len(self._cache)


class PackedTextStore(Mapping):
    """Read-only ``doc_id -> text`` over the block-compressed arena."""

    def __init__(
        self,
        columns: Mapping[str, "memoryview | bytes"],
        universe: tuple[str, ...],
        index_of: dict[str, int],
        insertion_order: Sequence[str],
    ) -> None:
        self._universe = universe
        self._index_of = index_of
        self._insertion = insertion_order
        lengths = memoryview(columns["tlen"]).cast("I")
        self._offsets = _offsets(lengths)
        block_lengths = memoryview(columns["blen"]).cast("I")
        self._block_offsets = _offsets(block_lengths)
        self._blocks = memoryview(columns["blocks"])
        self._block_cache: dict[int, bytes] = {}
        self._cache: dict[str, str] = {}

    def _block(self, index: int) -> bytes:
        data = self._block_cache.get(index)
        if data is None:
            start = int(self._block_offsets[index])
            end = int(self._block_offsets[index + 1])
            data = zlib.decompress(self._blocks[start:end])
            self._block_cache[index] = data
        return data

    def __getitem__(self, doc_id: str) -> str:
        text = self._cache.get(doc_id)
        if text is not None:
            return text
        slot = self._index_of.get(doc_id)
        if slot is None:
            raise KeyError(doc_id)
        block = slot // TEXT_BLOCK
        base = int(self._offsets[block * TEXT_BLOCK])
        data = self._block(block)
        start = int(self._offsets[slot]) - base
        end = int(self._offsets[slot + 1]) - base
        text = data[start:end].decode("utf-8")
        self._cache[doc_id] = text
        return text

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._index_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._insertion)

    def __len__(self) -> int:
        return len(self._universe)
