"""Relationship-path explanations (paper Tables II & VI).

Given the subgraph embeddings of a query and a result, the overlap induces
KG paths that link entities *between* the two texts — the intuitive clues
NewsLink surfaces to users.  Paths are found inside the union of the two
embeddings (never the whole KG), must pass through the overlap region, and
are verbalized with node labels and relation arrows, e.g.::

    Clinton -[candidate_of]-> Election 2016 <-[candidate_of]- Trump
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.document_embedding import DocumentEmbedding
from repro.core.overlap import embedding_overlap
from repro.kg.graph import KnowledgeGraph
from repro.kg.types import OrientedEdge


@dataclass(frozen=True)
class RelationshipPath:
    """A KG path linking an entity of the query to an entity of the result.

    Attributes:
        nodes: node ids along the path, endpoints included.
        edges: edges along the path, ``edges[i]`` connects ``nodes[i]`` and
            ``nodes[i+1]`` (in either KG direction).
        via: an overlap node the path passes through (the shared evidence).
    """

    nodes: tuple[str, ...]
    edges: tuple[OrientedEdge, ...]
    via: str

    @property
    def length(self) -> int:
        """Number of edges on the path."""
        return len(self.edges)

    @property
    def endpoints(self) -> tuple[str, str]:
        """The two linked entity node ids."""
        return self.nodes[0], self.nodes[-1]


def verbalize_path(path: RelationshipPath, graph: KnowledgeGraph) -> str:
    """Render ``path`` with node labels and directed relation arrows."""
    if not path.nodes:
        return ""
    parts = [graph.node(path.nodes[0]).label]
    for index, edge in enumerate(path.edges):
        left, right = path.nodes[index], path.nodes[index + 1]
        kg_edge = edge.as_kg_edge()
        if kg_edge.source == left:
            parts.append(f" -[{kg_edge.relation}]-> ")
        else:
            parts.append(f" <-[{kg_edge.relation}]- ")
        parts.append(graph.node(right).label)
        del right
    return "".join(parts)


def explain_pair(
    query_embedding: DocumentEmbedding,
    result_embedding: DocumentEmbedding,
    max_paths: int = 10,
    max_length: int = 6,
) -> list[RelationshipPath]:
    """Relationship paths linking query entities to result entities.

    Searches the union of the two embeddings with BFS (unweighted — the
    embeddings are already shortest-path unions), keeps only paths that
    touch the overlap region, and returns the shortest ``max_paths`` paths
    sorted by length then endpoints.
    """
    overlap = embedding_overlap(query_embedding, result_embedding)
    if overlap.is_empty:
        return []
    adjacency = _union_adjacency(query_embedding, result_embedding)
    query_entities = sorted(query_embedding.entity_nodes())
    result_entities = set(result_embedding.entity_nodes())
    shared = overlap.shared_nodes

    paths: list[RelationshipPath] = []
    seen_pairs: set[frozenset[str]] = set()
    for start in query_entities:
        if start not in adjacency:
            continue
        for path in _bfs_paths(adjacency, start, result_entities, max_length):
            # Unordered: when X and Y appear in both texts, keep only one
            # of the X->Y / Y->X renderings.
            endpoint_pair = frozenset((path.nodes[0], path.nodes[-1]))
            if endpoint_pair in seen_pairs:
                continue
            on_overlap = [node for node in path.nodes if node in shared]
            if not on_overlap:
                continue
            seen_pairs.add(endpoint_pair)
            paths.append(
                RelationshipPath(nodes=path.nodes, edges=path.edges, via=on_overlap[0])
            )
    paths.sort(key=lambda p: (p.length, p.endpoints))
    return paths[:max_paths]


@dataclass(frozen=True)
class _RawPath:
    nodes: tuple[str, ...]
    edges: tuple[OrientedEdge, ...]


def _union_adjacency(
    a: DocumentEmbedding, b: DocumentEmbedding
) -> dict[str, list[tuple[str, OrientedEdge]]]:
    adjacency: dict[str, list[tuple[str, OrientedEdge]]] = {}
    for edge in sorted(
        a.edges | b.edges, key=lambda e: (e.source, e.target, e.relation)
    ):
        adjacency.setdefault(edge.source, []).append((edge.target, edge))
        adjacency.setdefault(edge.target, []).append((edge.source, edge))
    return adjacency


def _bfs_paths(
    adjacency: dict[str, list[tuple[str, OrientedEdge]]],
    start: str,
    targets: set[str],
    max_length: int,
) -> list[_RawPath]:
    """Shortest path from ``start`` to each reachable target (BFS tree)."""
    parents: dict[str, tuple[str, OrientedEdge] | None] = {start: None}
    queue: deque[tuple[str, int]] = deque([(start, 0)])
    while queue:
        node, depth = queue.popleft()
        if depth >= max_length:
            continue
        for neighbor, edge in adjacency.get(node, []):
            if neighbor in parents:
                continue
            parents[neighbor] = (node, edge)
            queue.append((neighbor, depth + 1))
    paths: list[_RawPath] = []
    for target in sorted(targets):
        if target == start or target not in parents:
            continue
        nodes: list[str] = [target]
        edges: list[OrientedEdge] = []
        current = target
        while parents[current] is not None:
            parent, edge = parents[current]  # type: ignore[misc]
            edges.append(edge)
            nodes.append(parent)
            current = parent
        nodes.reverse()
        edges.reverse()
        paths.append(_RawPath(nodes=tuple(nodes), edges=tuple(edges)))
    return paths
