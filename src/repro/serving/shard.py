"""Shard worker pools: forked processes serving one shard's requests.

Transport model
---------------
Each shard gets ``workers_per_shard`` **forked** worker processes (fork,
never spawn: the worker must inherit the planner's precompiled shard
engine copy-on-write — re-pickling the indexes would defeat the whole
pre-fork compile, exactly as in :mod:`repro.parallel.executor`).  Parent
and worker talk over a duplex :func:`multiprocessing.Pipe` carrying
``(req_id, kind, payload)`` requests and ``(req_id, status, payload)``
replies; ``req_id`` is a per-worker monotonic counter so a stale reply
(from a request whose gather timed out) can never be paired with the
wrong request — in practice a timed-out worker is killed and respawned,
so its pipe is never reused.

Failure model
-------------
A worker that dies (EOF on the pipe) or stalls (no reply within the
gather budget) is marked dead, its process terminated, and — by default
— a fresh worker is forked into the pool.  Scatter-gather *search*
reports the affected shard as failed and carries on with the remaining
shards (a partial result, flagged, never a hang); single-shard requests
raise :class:`~repro.errors.ShardFailedError`.  A killed worker's
accumulated counters die with it; the scrape-time stats fold only sums
the workers that are alive to answer (documented in
``docs/serving.md``).

:class:`InlineShardGroup` implements the identical interface with plain
in-process calls — zero forks, used by the differential tests and the
``transport="inline"`` deployment mode (useful on platforms without
``fork``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing.connection import Connection, wait as connection_wait
from threading import Condition, Lock
from typing import TYPE_CHECKING, Any, NamedTuple, Sequence

from repro.core.serialization import embedding_from_dict
from repro.errors import ConfigError, ShardFailedError
from repro.obs.metrics import MetricsRegistry, Snapshot, merge_snapshots
from repro.reliability import faults
from repro.search.pruned import QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.engine import NewsLinkEngine

#: Request kinds a shard worker understands.
REQUEST_KINDS = frozenset(
    {"search", "snippet", "document", "explain", "stats", "ping", "shutdown"}
)

#: How long ``close()`` waits for a worker to exit after "shutdown"
#: before escalating to terminate/kill.
_SHUTDOWN_GRACE_S = 5.0


class ShardReply(NamedTuple):
    """One shard's answer to a scattered request."""

    shard_id: int
    ok: bool
    value: Any
    error: str | None


def _handle_request(engine: "NewsLinkEngine", kind: str, payload: dict) -> Any:
    """Serve one request against the (shard) engine.  Runs in the worker."""
    if kind == "search":
        # "profile"/"gamma" are optional for wire compatibility with
        # coordinators that predate the personalization channel; context
        # terms are computed once on the frontend, so shard workers stay
        # stateless.
        return engine.rank_terms(
            payload["bow"],
            payload["bon"],
            payload["k"],
            beta=payload.get("beta"),
            ranking=payload.get("ranking"),
            profile_terms=payload.get("profile"),
            gamma=payload.get("gamma"),
        )
    if kind == "snippet":
        return engine.snippet(payload["query"], payload["doc_id"])
    if kind == "document":
        return engine.document_text(payload["doc_id"])
    if kind == "explain":
        # The query embedding was computed once at the coordinator; ship
        # it serialized so the shard never re-runs NLP/NE.
        embedding = embedding_from_dict(payload["embedding"])
        return engine.explanation(
            payload["query"],
            payload["doc_id"],
            query_embedding=embedding,
        )
    if kind == "stats":
        return {
            "query_stats": engine.query_stats.as_dict(),
            "metrics": engine.metrics_registry.snapshot(),
        }
    if kind == "ping":
        return "pong"
    raise ValueError(f"unknown request kind {kind!r}")


def _worker_main(
    conn: Connection, engine: "NewsLinkEngine", shard_id: int
) -> None:
    """The forked worker's serve loop (request → reply, until shutdown).

    Every exception is reported as an ``("error", ...)`` reply rather
    than killing the worker — a bad request must not take down the
    shard.  Only pipe loss (parent gone) or "shutdown" ends the loop.
    """
    while True:
        try:
            req_id, kind, payload = conn.recv()
        except (EOFError, OSError):
            break
        if kind == "shutdown":
            try:
                conn.send((req_id, "ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            if faults.ACTIVE:
                faults.fire("serving.worker_request")
            result = _handle_request(engine, kind, payload)
            reply = (req_id, "ok", result)
        except BaseException as exc:  # noqa: BLE001 - reported, not fatal
            reply = (req_id, "error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerHandle:
    """Parent-side handle to one forked shard worker."""

    def __init__(
        self,
        shard_id: int,
        worker_id: int,
        process: multiprocessing.Process,
        conn: Connection,
    ) -> None:
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.alive = True
        self._next_req_id = 0
        self.inflight: int | None = None  # req_id awaiting a reply

    def send(self, kind: str, payload: dict | None) -> int:
        """Ship a request; returns its ``req_id``.  Raises on a dead pipe."""
        req_id = self._next_req_id
        self._next_req_id += 1
        self.conn.send((req_id, kind, payload or {}))
        self.inflight = req_id
        return req_id

    def receive(self, req_id: int) -> tuple[str, Any]:
        """Read the reply to ``req_id`` (discarding stale predecessors)."""
        while True:
            got_id, status, payload = self.conn.recv()
            if got_id == req_id:
                self.inflight = None
                return status, payload
            # A stale reply from a request we stopped waiting for; skip.


class ProcessShardGroup:
    """A pool of forked workers per shard, with lease/scatter semantics.

    Thread-safe: the HTTP server's handler threads scatter and request
    concurrently.  Workers are leased per shard under a condition
    variable; scatter leases in **fixed shard order** (0, 1, 2, ...) so
    two concurrent scatters can never deadlock on each other's partially
    acquired workers.
    """

    def __init__(
        self,
        shards: "Sequence[NewsLinkEngine]",
        workers_per_shard: int = 1,
        respawn: bool = True,
    ) -> None:
        if workers_per_shard < 1:
            raise ConfigError(
                f"workers_per_shard must be >= 1, got {workers_per_shard}"
            )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - platform dependent
            raise ConfigError(
                "process transport requires the fork start method; use "
                "transport='inline' on this platform"
            ) from exc
        self._shards = list(shards)
        self._workers_per_shard = workers_per_shard
        self._respawn = respawn
        self._lock = Lock()
        self._available = Condition(self._lock)
        self._idle: list[list[WorkerHandle]] = [[] for _ in self._shards]
        self._all: list[list[WorkerHandle]] = [[] for _ in self._shards]
        self._closed = False
        self._worker_failures = 0
        self._next_worker_id = 0
        for shard_id in range(len(self._shards)):
            for _ in range(workers_per_shard):
                self._spawn_locked(shard_id)

    # -- lifecycle -----------------------------------------------------
    def _spawn_locked(self, shard_id: int) -> WorkerHandle:
        """Fork one worker for ``shard_id`` (caller holds no/any lock —
        registration mutates under the group lock)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._shards[shard_id], shard_id),
            name=f"newslink-shard{shard_id}-w{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = WorkerHandle(shard_id, worker_id, process, parent_conn)
        self._idle[shard_id].append(handle)
        self._all[shard_id].append(handle)
        return handle

    def close(self) -> None:
        """Shut every worker down; no orphaned processes survive.

        Idle workers get a cooperative "shutdown" request; anything
        still running after the grace period is terminated, then killed.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = [h for pool in self._all for h in pool]
            self._available.notify_all()
        for handle in handles:
            if handle.alive:
                try:
                    handle.conn.send((-1, "shutdown", {}))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE_S
        for handle in handles:
            remaining = max(0.0, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=1.0)
            handle.alive = False
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ProcessShardGroup":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def transport(self) -> str:
        return "process"

    @property
    def worker_failures(self) -> int:
        """Workers declared dead so far (timeouts + crashes)."""
        return self._worker_failures

    def live_workers(self) -> int:
        """Workers currently believed alive (all shards)."""
        with self._lock:
            return sum(
                1 for pool in self._all for h in pool if h.alive
            )

    def worker_pids(self) -> list[int]:
        """PIDs of every live worker process (tests assert no orphans)."""
        with self._lock:
            return [
                h.process.pid
                for pool in self._all
                for h in pool
                if h.alive and h.process.pid is not None
            ]

    # -- leasing -------------------------------------------------------
    def _lease(self, shard_id: int, timeout_s: float) -> WorkerHandle | None:
        """Borrow an idle worker of ``shard_id`` (None on timeout/closed)."""
        deadline = time.monotonic() + timeout_s
        with self._available:
            while True:
                if self._closed:
                    return None
                pool = self._idle[shard_id]
                while pool:
                    handle = pool.pop()
                    if handle.alive:
                        return handle
                if not any(h.alive for h in self._all[shard_id]):
                    return None  # shard has no workers left at all
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._available.wait(timeout=remaining)

    def _release(self, handle: WorkerHandle) -> None:
        with self._available:
            if handle.alive and not self._closed:
                self._idle[handle.shard_id].append(handle)
                self._available.notify_all()

    def _mark_dead(self, handle: WorkerHandle) -> None:
        """Declare a worker dead, reap its process, maybe respawn."""
        with self._available:
            if not handle.alive:
                return
            handle.alive = False
            self._worker_failures += 1
            closed = self._closed
        handle.process.terminate()
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():  # pragma: no cover - stuck in kernel
            handle.process.kill()
            handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        if self._respawn and not closed:
            with self._available:
                if not self._closed:
                    self._spawn_locked(handle.shard_id)
                    self._available.notify_all()

    # -- request fan-out ----------------------------------------------
    def scatter(
        self,
        kind: str,
        payloads: Sequence[dict | None],
        timeout_ms: float,
    ) -> list[ShardReply]:
        """Send one request per shard; gather replies under one budget.

        ``payloads[i]`` goes to shard ``i`` (``None`` skips the shard).
        Shards whose worker cannot be leased, dies, or misses the budget
        come back ``ok=False`` — the caller decides whether partial
        results are acceptable.  Never raises for per-shard failures.
        """
        if len(payloads) != len(self._shards):
            raise ValueError(
                f"expected {len(self._shards)} payloads, got {len(payloads)}"
            )
        deadline = time.monotonic() + timeout_ms / 1000.0
        replies: dict[int, ShardReply] = {}
        pending: dict[int, tuple[WorkerHandle, int]] = {}
        # Lease + send in fixed shard order (deadlock avoidance).
        for shard_id, payload in enumerate(payloads):
            if payload is None:
                continue
            timeout_s = max(0.0, deadline - time.monotonic())
            handle = self._lease(shard_id, timeout_s)
            if handle is None:
                replies[shard_id] = ShardReply(
                    shard_id, False, None, "no worker available"
                )
                continue
            try:
                req_id = handle.send(kind, payload)
            except (BrokenPipeError, OSError):
                self._mark_dead(handle)
                replies[shard_id] = ShardReply(
                    shard_id, False, None, "worker pipe broken"
                )
                continue
            pending[shard_id] = (handle, req_id)
        # Gather: poll all pending pipes together until done or expired.
        while pending:
            timeout_s = max(0.0, deadline - time.monotonic())
            conn_to_shard = {
                handle.conn: shard_id
                for shard_id, (handle, _) in pending.items()
            }
            ready = connection_wait(list(conn_to_shard), timeout=timeout_s)
            if not ready:
                break  # budget exhausted; everything left has timed out
            for conn in ready:
                shard_id = conn_to_shard[conn]
                handle, req_id = pending.pop(shard_id)
                try:
                    status, payload = handle.receive(req_id)
                except (EOFError, OSError):
                    self._mark_dead(handle)
                    replies[shard_id] = ShardReply(
                        shard_id, False, None, "worker died mid-request"
                    )
                    continue
                self._release(handle)
                replies[shard_id] = ShardReply(
                    shard_id, status == "ok", payload if status == "ok" else None,
                    None if status == "ok" else str(payload),
                )
        for shard_id, (handle, _) in pending.items():
            # Missed the budget: the worker may be wedged and its pipe
            # holds a stale reply — kill it rather than ever reuse it.
            self._mark_dead(handle)
            replies[shard_id] = ShardReply(
                shard_id, False, None, "gather timeout"
            )
        return [
            replies.get(
                shard_id, ShardReply(shard_id, False, None, "not queried")
            )
            for shard_id in range(len(self._shards))
        ]

    def request(
        self,
        shard_id: int,
        kind: str,
        payload: dict | None,
        timeout_ms: float,
    ) -> Any:
        """One request to one shard; raises :class:`ShardFailedError`."""
        deadline = time.monotonic() + timeout_ms / 1000.0
        handle = self._lease(shard_id, timeout_ms / 1000.0)
        if handle is None:
            raise ShardFailedError(shard_id, "no worker available")
        try:
            req_id = handle.send(kind, payload)
        except (BrokenPipeError, OSError):
            self._mark_dead(handle)
            raise ShardFailedError(shard_id, "worker pipe broken") from None
        timeout_s = max(0.0, deadline - time.monotonic())
        if not handle.conn.poll(timeout_s):
            self._mark_dead(handle)
            raise ShardFailedError(shard_id, "request timeout")
        try:
            status, reply = handle.receive(req_id)
        except (EOFError, OSError):
            self._mark_dead(handle)
            raise ShardFailedError(
                shard_id, "worker died mid-request"
            ) from None
        self._release(handle)
        if status != "ok":
            raise ShardFailedError(shard_id, str(reply))
        return reply

    # -- stats ---------------------------------------------------------
    def fold_stats(
        self, timeout_ms: float = 5_000.0
    ) -> tuple[QueryStats, Snapshot]:
        """Scrape every live worker and fold its silos.

        ``QueryStats`` counters add (:meth:`QueryStats.merge`); metric
        snapshots fold under :func:`merge_snapshots` (counters/buckets
        add, gauges max) — the same algebra the parallel indexer uses,
        so the totals read as if one process had served everything.
        Workers that died (and their already-counted work) are absent.
        """
        folded_stats = QueryStats()
        folded_metrics: Snapshot = MetricsRegistry().snapshot(
            run_collectors=False
        )
        deadline = time.monotonic() + timeout_ms / 1000.0
        for shard_id in range(len(self._shards)):
            # Lease *every* live worker of the shard at once so each is
            # scraped exactly once (leasing one at a time could hand the
            # same just-released worker back).
            with self._lock:
                target = sum(
                    1 for h in self._all[shard_id] if h.alive
                )
            leased: list[WorkerHandle] = []
            while len(leased) < target:
                timeout_s = max(0.0, deadline - time.monotonic())
                handle = self._lease(shard_id, timeout_s)
                if handle is None:
                    break
                leased.append(handle)
            for handle in leased:
                try:
                    req_id = handle.send("stats", {})
                    if not handle.conn.poll(
                        max(0.0, deadline - time.monotonic())
                    ):
                        self._mark_dead(handle)
                        continue
                    status, reply = handle.receive(req_id)
                except (BrokenPipeError, EOFError, OSError):
                    self._mark_dead(handle)
                    continue
                self._release(handle)
                if status != "ok":
                    continue
                folded_stats.merge(QueryStats(**reply["query_stats"]))
                folded_metrics = merge_snapshots(
                    folded_metrics, reply["metrics"]
                )
        return folded_stats, folded_metrics


class InlineShardGroup:
    """The same interface as :class:`ProcessShardGroup`, zero processes.

    Requests run synchronously against the shard engines in the calling
    thread/process.  This is the reference transport: the differential
    tests drive it to prove merge exactness without fork variance, and
    ``transport="inline"`` deploys it where ``fork`` is unavailable.
    """

    def __init__(self, shards: "Sequence[NewsLinkEngine]") -> None:
        self._shards = list(shards)
        self._closed = False

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def transport(self) -> str:
        return "inline"

    @property
    def worker_failures(self) -> int:
        return 0

    def live_workers(self) -> int:
        return 0 if self._closed else len(self._shards)

    def worker_pids(self) -> list[int]:
        return []

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "InlineShardGroup":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def scatter(
        self,
        kind: str,
        payloads: Sequence[dict | None],
        timeout_ms: float,
    ) -> list[ShardReply]:
        if len(payloads) != len(self._shards):
            raise ValueError(
                f"expected {len(self._shards)} payloads, got {len(payloads)}"
            )
        replies = []
        for shard_id, payload in enumerate(payloads):
            if payload is None:
                replies.append(
                    ShardReply(shard_id, False, None, "not queried")
                )
                continue
            try:
                if faults.ACTIVE:
                    faults.fire("serving.worker_request")
                value = _handle_request(
                    self._shards[shard_id], kind, payload
                )
                replies.append(ShardReply(shard_id, True, value, None))
            except Exception as exc:  # noqa: BLE001 - mirrors process path
                replies.append(
                    ShardReply(
                        shard_id, False, None, f"{type(exc).__name__}: {exc}"
                    )
                )
        return replies

    def request(
        self,
        shard_id: int,
        kind: str,
        payload: dict | None,
        timeout_ms: float,
    ) -> Any:
        try:
            if faults.ACTIVE:
                faults.fire("serving.worker_request")
            return _handle_request(self._shards[shard_id], kind, payload or {})
        except ShardFailedError:
            raise
        except Exception as exc:
            raise ShardFailedError(
                shard_id, f"{type(exc).__name__}: {exc}"
            ) from exc

    def fold_stats(
        self, timeout_ms: float = 5_000.0
    ) -> tuple[QueryStats, Snapshot]:
        folded_stats = QueryStats()
        folded_metrics: Snapshot = MetricsRegistry().snapshot(
            run_collectors=False
        )
        for shard in self._shards:
            folded_stats.merge(QueryStats(**shard.query_stats.as_dict()))
            folded_metrics = merge_snapshots(
                folded_metrics, shard.metrics_registry.snapshot()
            )
        return folded_stats, folded_metrics
