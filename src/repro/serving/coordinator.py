"""The scatter-gather coordinator: one logical engine over N shards.

A :class:`Coordinator` serves the same request surface as a single
:class:`~repro.search.engine.NewsLinkEngine` — search, snippets,
documents, explanations, stats — but fans the ranking work out to
document-partitioned shard workers:

1. **Admission** — the query takes a slot from the
   :class:`~repro.serving.admission.AdmissionController`; under
   overload it is shed (:class:`~repro.errors.OverloadShedError`,
   HTTP 429) instead of queueing unboundedly.
2. **Embed once** — the frontend engine (graph + NLP pipeline, zero
   documents) runs the NLP and NE stages exactly once, behind the same
   query-embedding LRU and per-query deadline the single engine uses.
   A deadline expiry degrades to text-only terms, exactly like
   ``NewsLinkEngine._search_degraded``.
3. **Scatter** — the analyzed term lists (never the text, never the
   embedding) go to one leased worker per shard, each asked for a full
   top ``k`` of its partition.
4. **Gather & merge** — per-shard hits are merged under the oracle's
   own ordering (descending score, ascending doc id; shards partition
   the corpus, so no doc appears twice).  Because shards score with
   corpus-wide BM25 statistics (see :mod:`repro.serving.planner`), the
   merged list is **bit-identical** to the whole-corpus engine's.  A
   shard that fails or misses the gather budget yields a *partial*
   result, flagged, never a hang.

Stats model
-----------
Worker processes accumulate their own ``QueryStats`` and metric
registries; :meth:`stats_payload`/:meth:`metrics_snapshot` fold them at
scrape time with the :mod:`repro.obs` merge algebra (counters and
histogram buckets add, gauges max), then fold in the frontend's
registry.  Folded ``query_stats`` count *per-shard ranking work* (one
logical query scatters to N shards, so ``queries`` grows by N); the
coordinator's own :class:`ServingStats` count *logical* queries,
degradations, partials and sheds.  Both are reported side by side.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, NamedTuple

from repro.config import ServingConfig
from repro.core.serialization import embedding_to_dict
from repro.errors import (
    DocumentNotIndexedError,
    DeadlineExpiredError,
    OverloadShedError,
)
from repro.obs.instruments import ServingInstruments
from repro.obs.metrics import Snapshot, merge_snapshots
from repro.search.bon import bon_terms
from repro.search.engine import SearchResult
from repro.serving.admission import AdmissionController
from repro.serving.planner import ShardPlan, ShardPlanner
from repro.serving.shard import InlineShardGroup, ProcessShardGroup
from repro.utils.deadline import Deadline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.presentation import Explanation
    from repro.search.engine import NewsLinkEngine
    from repro.search.pruned import QueryStats
    from repro.search.snippets import Snippet


@dataclass
class ServingStats:
    """Logical (per-request) counters the coordinator owns.

    Attributes:
        queries: logical queries admitted and answered.
        degraded_queries: answered text-only (deadline expired in NE).
        partial_queries: answered with >= 1 shard missing.
        shed_queries: rejected by admission control (never ranked).
    """

    queries: int = 0
    degraded_queries: int = 0
    partial_queries: int = 0
    shed_queries: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class GatherOutcome(NamedTuple):
    """A merged search answer plus its completeness flags."""

    results: list[SearchResult]
    partial: bool
    failed_shards: tuple[int, ...]


class Coordinator:
    """Scatter-gather serving over a planned shard group."""

    def __init__(
        self,
        frontend: "NewsLinkEngine",
        plan: ShardPlan,
        group: "ProcessShardGroup | InlineShardGroup",
        config: ServingConfig | None = None,
    ) -> None:
        self._frontend = frontend
        self._plan = plan
        self._group = group
        self._config = config or ServingConfig()
        self._admission = AdmissionController(
            self._config.effective_max_inflight,
            self._config.max_queue,
            self._config.shed_on_deadline,
        )
        self._serving_stats = ServingStats()
        self._obs = ServingInstruments(frontend.metrics_registry)
        self._obs.bind(self)
        self._closed = False

    @classmethod
    def build(
        cls,
        source: "NewsLinkEngine",
        config: ServingConfig | None = None,
        frontend: "NewsLinkEngine | None" = None,
    ) -> "Coordinator":
        """Plan shards from an indexed ``source`` engine and start serving.

        ``source`` must already hold the corpus; it is left untouched
        (tests keep using it as the differential oracle).  The frontend
        — the engine that runs per-query NLP/NE — defaults to a fresh
        document-free engine sharing ``source``'s graph, label index and
        configuration.
        """
        from repro.search.engine import NewsLinkEngine

        config = config or ServingConfig()
        plan, shards = ShardPlanner(source, config.num_shards).build()
        if frontend is None:
            frontend = NewsLinkEngine(
                source.graph, source.config, label_index=source.label_index
            )
        if config.transport == "process":
            group: "ProcessShardGroup | InlineShardGroup" = ProcessShardGroup(
                shards, workers_per_shard=config.workers_per_shard
            )
        else:
            group = InlineShardGroup(shards)
        return cls(frontend, plan, group, config)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop the shard group (terminates every worker).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._group.close()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -------------------------------------------------
    @property
    def config(self) -> ServingConfig:
        return self._config

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def frontend(self) -> "NewsLinkEngine":
        """The document-free engine running per-query NLP/NE."""
        return self._frontend

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def shard_group(self) -> "ProcessShardGroup | InlineShardGroup":
        return self._group

    @property
    def serving_stats(self) -> ServingStats:
        return self._serving_stats

    @property
    def num_indexed(self) -> int:
        """Documents indexed across all shards."""
        return len(self._plan.assignments)

    # -- search --------------------------------------------------------
    def search(
        self,
        text: str,
        k: int = 10,
        beta: float | None = None,
        ranking: str | None = None,
        deadline_ms: float | None = None,
        profile=None,
        session=None,
        gamma: float | None = None,
        advance_session: bool = False,
    ) -> list[SearchResult]:
        """Merged top-``k`` (drops the completeness flags; see
        :meth:`search_detailed`)."""
        return self.search_detailed(
            text,
            k,
            beta=beta,
            ranking=ranking,
            deadline_ms=deadline_ms,
            profile=profile,
            session=session,
            gamma=gamma,
            advance_session=advance_session,
        ).results

    def search_detailed(
        self,
        text: str,
        k: int = 10,
        beta: float | None = None,
        ranking: str | None = None,
        deadline_ms: float | None = None,
        profile=None,
        session=None,
        gamma: float | None = None,
        advance_session: bool = False,
    ) -> GatherOutcome:
        """Admission → embed once → scatter → gather → merge.

        Raises :class:`OverloadShedError` when admission control rejects
        the query; every other failure mode answers (possibly degraded
        and/or partial).  The deadline bounds admission waiting and the
        NE stage — ranking itself always runs to completion, exactly
        like the single engine's deadline contract.

        ``profile`` / ``session`` / ``gamma`` personalize exactly like
        :meth:`NewsLinkEngine.search`: context terms are resolved on the
        document-free frontend and shipped inside the scatter payload,
        so shard workers stay stateless.  ``advance_session=True`` folds
        the query embedding into ``session`` after a non-degraded
        gather.
        """
        budget = (
            self._frontend.config.deadline_ms
            if deadline_ms is None
            else deadline_ms
        )
        deadline = Deadline(budget) if budget is not None else None
        obs = self._obs
        start = time.perf_counter() if obs.enabled else 0.0
        try:
            self._admission.acquire(deadline)
        except OverloadShedError:
            self._serving_stats.shed_queries += 1
            if obs.enabled:
                obs.requests.inc(outcome="shed")
            raise
        try:
            outcome, degraded = self._search_admitted(
                text, k, beta, ranking, deadline,
                profile, session, gamma, advance_session,
            )
        finally:
            self._admission.release()
        self._serving_stats.queries += 1
        if degraded:
            self._serving_stats.degraded_queries += 1
        if outcome.partial:
            self._serving_stats.partial_queries += 1
        if obs.enabled:
            obs.request_latency.observe(
                time.perf_counter() - start, stage="total"
            )
            if degraded:
                obs.requests.inc(outcome="degraded")
            if outcome.partial:
                obs.requests.inc(outcome="partial")
            if not degraded and not outcome.partial:
                obs.requests.inc(outcome="served")
        return outcome

    def _search_admitted(
        self,
        text: str,
        k: int,
        beta: float | None,
        ranking: str | None,
        deadline: Deadline | None,
        profile=None,
        session=None,
        gamma: float | None = None,
        advance_session: bool = False,
    ) -> tuple[GatherOutcome, bool]:
        """The post-admission serving path; returns (outcome, degraded)."""
        frontend = self._frontend
        obs = self._obs
        # Stage 1: NLP + NE, once, behind the frontend's query LRU.  The
        # beta gating below replicates NewsLinkEngine._rank bit for bit.
        fusion = frontend.config.fusion
        if beta is not None and beta != fusion.beta:
            fusion = replace(fusion, beta=beta)
        effective_beta = fusion.beta
        degraded = False
        degraded_reason: str | None = None
        query_embedding = None
        embed_start = time.perf_counter() if obs.enabled else 0.0
        try:
            _, query_embedding, ctx_terms, ctx_gamma = (
                frontend.contextual_query_state(
                    text,
                    profile=profile,
                    session=session,
                    gamma=gamma,
                    deadline=deadline,
                )
            )
            bow = (
                frontend.analyzer.analyze(text)
                if effective_beta < 1.0
                else []
            )
            bon = (
                bon_terms(query_embedding)
                if effective_beta > 0.0 and not query_embedding.is_empty
                else []
            )
        except DeadlineExpiredError as exc:
            # Same fallback as NewsLinkEngine._search_degraded: rank the
            # text channel alone (beta=0, context dropped) and flag
            # every result.
            degraded = True
            degraded_reason = str(exc)
            effective_beta = 0.0
            bow = frontend.analyzer.analyze(text)
            bon = []
            ctx_terms, ctx_gamma = (), 0.0
        if obs.enabled:
            obs.request_latency.observe(
                time.perf_counter() - embed_start, stage="embed"
            )
        # Stages 2-4: scatter the terms, gather per-shard top-k, merge.
        payload = {
            "bow": bow,
            "bon": bon,
            "k": k,
            "beta": effective_beta,
            "ranking": ranking,
            "profile": list(ctx_terms),
            "gamma": ctx_gamma,
        }
        scatter_start = time.perf_counter() if obs.enabled else 0.0
        replies = self._group.scatter(
            "search",
            [payload] * self._plan.num_shards,
            timeout_ms=self._config.gather_timeout_ms,
        )
        if obs.enabled:
            obs.request_latency.observe(
                time.perf_counter() - scatter_start, stage="scatter"
            )
        hits: list[SearchResult] = []
        failed: list[int] = []
        for reply in replies:
            if reply.ok:
                hits.extend(reply.value)
            else:
                failed.append(reply.shard_id)
        # Shards partition the corpus, so the global top-k is a plain
        # k-way selection under the oracle ordering of
        # repro.search.topk.top_k (descending score, ascending doc id).
        merged = heapq.nsmallest(
            k, hits, key=lambda hit: (-hit.score, hit.doc_id)
        )
        if degraded:
            merged = [
                replace(hit, degraded=True, degraded_reason=degraded_reason)
                for hit in merged
            ]
        outcome = GatherOutcome(
            results=list(merged),
            partial=bool(failed),
            failed_shards=tuple(failed),
        )
        if (
            advance_session
            and session is not None
            and not degraded
            and query_embedding is not None
        ):
            session.advance(text, query_embedding)
        return outcome, degraded

    # -- single-document requests (routed to the owning shard) ---------
    def _shard_of(self, doc_id: str) -> int:
        shard_id = self._plan.shard_of(doc_id)
        if shard_id is None:
            raise DocumentNotIndexedError(doc_id)
        return shard_id

    def snippet(self, query_text: str, doc_id: str) -> "Snippet":
        """A query-biased snippet, generated on the owning shard."""
        return self._group.request(
            self._shard_of(doc_id),
            "snippet",
            {"query": query_text, "doc_id": doc_id},
            self._config.gather_timeout_ms,
        )

    def document_text(self, doc_id: str) -> str:
        """The stored raw text, fetched from the owning shard."""
        return self._group.request(
            self._shard_of(doc_id),
            "document",
            {"doc_id": doc_id},
            self._config.gather_timeout_ms,
        )

    def explanation(
        self, query_text: str, doc_id: str, query_embedding=None
    ) -> "Explanation":
        """A presentable explanation; the query embeds at the frontend
        (LRU-shared with :meth:`search`), paths compute on the owning
        shard where the result embedding lives.  ``query_embedding``
        overrides the query's own embedding — the server passes a
        session's dialogue embedding here so explanations re-anchor on
        the whole conversation."""
        shard_id = self._shard_of(doc_id)
        if query_embedding is None:
            _, query_embedding = self._frontend.query_state(query_text)
        return self._group.request(
            shard_id,
            "explain",
            {
                "query": query_text,
                "doc_id": doc_id,
                "embedding": embedding_to_dict(query_embedding),
            },
            self._config.gather_timeout_ms,
        )

    # -- stats ---------------------------------------------------------
    def folded_query_stats(self) -> "QueryStats":
        """Every shard worker's ``QueryStats``, summed (scrape-time)."""
        folded, _ = self._group.fold_stats()
        folded.merge(self._frontend.query_stats)
        return folded

    def metrics_snapshot(self) -> Snapshot:
        """The frontend registry folded with every worker's registry."""
        _, worker_metrics = self._group.fold_stats()
        return merge_snapshots(
            self._frontend.metrics_registry.snapshot(), worker_metrics
        )

    def stats_payload(self) -> dict:
        """The ``/stats`` JSON body (see ``docs/serving.md``)."""
        from repro.obs import render_json

        folded_stats, worker_metrics = self._group.fold_stats()
        folded_stats.merge(self._frontend.query_stats)
        merged = merge_snapshots(
            self._frontend.metrics_registry.snapshot(), worker_metrics
        )
        return {
            "indexed": self.num_indexed,
            "serving": {
                "num_shards": self._plan.num_shards,
                "doc_counts": list(self._plan.doc_counts),
                "transport": self._group.transport,
                "live_workers": self._group.live_workers(),
                "worker_failures": self._group.worker_failures,
                "admission": self._admission.snapshot(),
                **self._serving_stats.as_dict(),
            },
            "query_stats": folded_stats.as_dict(),
            "search_stats": self._frontend.search_stats.as_dict(),
            "metrics": render_json(merged),
            "traces": self._frontend.observability.tracer.records(),
        }
