"""Seeded, replayable traffic for the serving benchmark.

``benchmarks/bench_serving.py`` needs load that is (a) *reproducible* —
the same seed must produce the same queries at the same offsets, so a
regression run replays the exact traffic of the baseline run — and (b)
*realistic enough to overload* — arrivals bunch (heavy-tailed
inter-arrival gaps, Pareto-distributed), which is what actually drives
queues deep and sheds requests.

:func:`generate_trace` is a pure function of its config: no wall clock,
no global RNG — a ``random.Random(seed)`` drives query choice and
arrival gaps.  :func:`replay` then executes a trace against anything
that serves queries (a :class:`~repro.serving.coordinator.Coordinator`
or a bare engine) in one of two modes:

* **open-loop** — every query fires at its scheduled offset regardless
  of whether earlier ones finished (constant-rate-ish arrival process;
  the mode that exposes queueing collapse under overload);
* **closed-loop** — ``concurrency`` workers issue queries back to back
  (the mode that measures achievable throughput).

The report carries throughput, latency percentiles and shed/degraded/
partial counts — everything the benchmark publishes.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any, Sequence

from repro.errors import ConfigError, OverloadShedError


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs for one generated trace (all consumed deterministically).

    Attributes:
        seed: RNG seed; same seed + same pool = same trace, always.
        num_queries: events in the trace.
        mode: ``"open"`` (scheduled offsets) or ``"closed"``
            (back-to-back from ``concurrency`` workers).
        rate_qps: mean arrival rate for open-loop traces.
        pareto_alpha: inter-arrival tail index; smaller = burstier
            (must be > 1 so the mean exists).
        k: top-k requested per query.
        deadline_ms: per-query deadline (None = no deadline).
        concurrency: closed-loop worker threads.
    """

    seed: int = 0
    num_queries: int = 100
    mode: str = "open"
    rate_qps: float = 50.0
    pareto_alpha: float = 1.5
    k: int = 10
    deadline_ms: float | None = None
    concurrency: int = 4

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise ConfigError("num_queries must be >= 1")
        if self.mode not in ("open", "closed"):
            raise ConfigError("mode must be 'open' or 'closed'")
        if self.rate_qps <= 0:
            raise ConfigError("rate_qps must be positive")
        if self.pareto_alpha <= 1.0:
            raise ConfigError(
                "pareto_alpha must be > 1 (finite-mean inter-arrivals)"
            )
        if self.concurrency < 1:
            raise ConfigError("concurrency must be >= 1")


@dataclass(frozen=True)
class TrafficEvent:
    """One scheduled query."""

    index: int
    at_s: float
    query: str
    k: int


def generate_trace(
    config: TrafficConfig,
    queries: Sequence[str],
    weights: Sequence[float] | None = None,
) -> list[TrafficEvent]:
    """A deterministic trace over the ``queries`` pool.

    ``weights`` skews the query mix (defaults to uniform).  Open-loop
    offsets accumulate Pareto(``pareto_alpha``) gaps scaled so the mean
    rate is ``rate_qps``; individual gaps are capped at 50x the mean gap
    so one extreme tail draw cannot stretch the trace unboundedly.
    Closed-loop traces schedule everything at offset 0 (workers pace
    themselves).
    """
    if not queries:
        raise ConfigError("query pool must not be empty")
    if weights is not None and len(weights) != len(queries):
        raise ConfigError("weights must match the query pool length")
    rng = random.Random(config.seed)
    pool = list(queries)
    # Mean of paretovariate(a) is a/(a-1); rescale to the target rate.
    mean_gap = 1.0 / config.rate_qps
    scale = mean_gap * (config.pareto_alpha - 1.0) / config.pareto_alpha
    cap = 50.0 * mean_gap
    events = []
    offset = 0.0
    for index in range(config.num_queries):
        if config.mode == "open" and index > 0:
            offset += min(cap, scale * rng.paretovariate(config.pareto_alpha))
        query = (
            rng.choices(pool, weights=list(weights), k=1)[0]
            if weights is not None
            else pool[rng.randrange(len(pool))]
        )
        events.append(
            TrafficEvent(
                index=index,
                at_s=offset if config.mode == "open" else 0.0,
                query=query,
                k=config.k,
            )
        )
    return events


@dataclass
class ReplayReport:
    """Everything one replay measured."""

    issued: int = 0
    completed: int = 0
    shed: int = 0
    degraded: int = 0
    partial: int = 0
    errors: int = 0
    duration_s: float = 0.0
    throughput_qps: float = 0.0
    latencies_ms: dict[str, float] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.issued if self.issued else 0.0

    def as_dict(self) -> dict[str, Any]:
        body = {f.name: getattr(self, f.name) for f in fields(self)}
        body["shed_rate"] = self.shed_rate
        return body


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def _issue(target: Any, event: TrafficEvent, deadline_ms: float | None):
    """One query against ``target`` (coordinator or bare engine)."""
    if hasattr(target, "search_detailed"):
        outcome = target.search_detailed(
            event.query, event.k, deadline_ms=deadline_ms
        )
        results = outcome.results
        partial = outcome.partial
    else:
        results = target.search(event.query, event.k, deadline_ms=deadline_ms)
        partial = False
    degraded = bool(results) and results[0].degraded
    return results, degraded, partial


def replay(
    target: Any, trace: Sequence[TrafficEvent], config: TrafficConfig
) -> ReplayReport:
    """Execute a trace against ``target`` and measure the outcome.

    Shed queries (:class:`OverloadShedError`) are expected under
    overload and counted, not raised.  Any other exception is counted
    as an error (and the replay carries on — one bad query must not
    invalidate the measurement).
    """
    report = ReplayReport(issued=len(trace))
    latencies: list[float] = []
    lock = threading.Lock()

    def run_one(event: TrafficEvent) -> None:
        began = time.perf_counter()
        try:
            _, degraded, partial = _issue(target, event, config.deadline_ms)
        except OverloadShedError:
            with lock:
                report.shed += 1
            return
        except Exception:  # noqa: BLE001 - measured, not propagated
            with lock:
                report.errors += 1
            return
        elapsed_ms = (time.perf_counter() - began) * 1000.0
        with lock:
            report.completed += 1
            latencies.append(elapsed_ms)
            if degraded:
                report.degraded += 1
            if partial:
                report.partial += 1

    start = time.monotonic()
    if config.mode == "open":
        threads = []
        for event in trace:
            delay = start + event.at_s - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            thread = threading.Thread(
                target=run_one, args=(event,), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
    else:
        iterator = iter(trace)

        def drain() -> None:
            while True:
                with lock:
                    event = next(iterator, None)
                if event is None:
                    return
                run_one(event)

        workers = [
            threading.Thread(target=drain, daemon=True)
            for _ in range(config.concurrency)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    report.duration_s = time.monotonic() - start
    if report.duration_s > 0:
        report.throughput_qps = report.completed / report.duration_s
    latencies.sort()
    report.latencies_ms = {
        "p50": percentile(latencies, 0.50),
        "p90": percentile(latencies, 0.90),
        "p99": percentile(latencies, 0.99),
        "max": latencies[-1] if latencies else 0.0,
    }
    return report
