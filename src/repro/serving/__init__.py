"""Sharded serving: document-partitioned shards + scatter-gather.

The single-engine deployment tops out at one process: the whole corpus
lives in one pair of inverted indexes behind a threaded stdlib server.
This package is the scale-out layer:

* :class:`~repro.serving.planner.ShardPlanner` — splits an indexed
  engine into N document-partitioned shard engines, each scored with
  corpus-wide BM25 statistics so per-shard scores are bit-identical to
  the whole-corpus oracle;
* :mod:`~repro.serving.shard` — a pool of forked worker processes per
  shard, serving ranked queries over a pipe protocol (workers inherit
  the precompiled shard engine copy-on-write);
* :class:`~repro.serving.coordinator.Coordinator` — embeds the query
  once, scatters the term lists to every shard, gathers per-shard top-k
  with a timeout (a killed worker yields a *partial* result, never a
  hang), and merges with the same score/doc-id ordering the single
  engine uses;
* :class:`~repro.serving.admission.AdmissionController` — bounded
  in-flight + wait queue with deadline-aware shedding, so overload
  degrades to fast 429s instead of unbounded queueing;
* :mod:`~repro.serving.traffic` — a seeded, replayable traffic
  generator (query mixes, heavy-tailed arrivals, stress tier) driving
  ``benchmarks/bench_serving.py``.

See ``docs/serving.md`` for the architecture and the exactness
contract.
"""

from repro.serving.admission import AdmissionController
from repro.serving.coordinator import Coordinator, GatherOutcome, ServingStats
from repro.serving.planner import ShardPlan, ShardPlanner
from repro.serving.traffic import (
    ReplayReport,
    TrafficConfig,
    TrafficEvent,
    generate_trace,
    replay,
)

__all__ = [
    "AdmissionController",
    "Coordinator",
    "GatherOutcome",
    "ReplayReport",
    "ServingStats",
    "ShardPlan",
    "ShardPlanner",
    "TrafficConfig",
    "TrafficEvent",
    "generate_trace",
    "replay",
]
