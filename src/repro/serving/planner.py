"""Partition an indexed engine into document-sharded engines.

The planner is the offline half of sharded serving: given one fully
indexed :class:`~repro.search.engine.NewsLinkEngine` (which doubles as
the differential oracle in tests), it deals the corpus round-robin into
``num_shards`` shard engines and freezes everything the workers will
share copy-on-write.

Exactness contract
------------------
BM25 scores depend on corpus-wide statistics — document count, per-term
document frequency, average document length.  A shard scoring its
partition with *local* statistics would produce different floats than
the whole-corpus engine, and the coordinator's merge could then reorder
or even swap members of the global top-k.  The planner therefore
captures :class:`~repro.search.bm25.CorpusStats` from the **source**
engine's indexes and installs them on every shard
(:meth:`NewsLinkEngine.set_corpus_stats`): per-document inputs (term
frequency, document length) stay shard-local, corpus-wide inputs come
from the frozen global statistics, so each shard's per-document scores
are bit-identical to the oracle's.  Shards partition the document set,
so merging per-shard top-k lists under the oracle's own ordering
(descending score, ascending doc id) reproduces the oracle's top-k
exactly — property-tested in ``tests/serving/test_differential.py``.

Per-query max-normalization (``fusion.normalize=True``) needs the
global score maxima *per query*, which no shard can know locally; the
planner rejects that configuration up front rather than serving subtly
wrong merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.search.bm25 import CorpusStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.engine import NewsLinkEngine


@dataclass(frozen=True)
class ShardPlan:
    """The frozen outcome of partitioning a corpus across shards.

    Attributes:
        num_shards: how many shards the corpus was dealt into.
        assignments: ``doc_id -> shard_id`` for every indexed document.
        doc_counts: documents per shard, indexed by shard id.
    """

    num_shards: int
    assignments: Mapping[str, int]
    doc_counts: tuple[int, ...]

    def shard_of(self, doc_id: str) -> int | None:
        """The shard owning ``doc_id`` (None when never indexed)."""
        return self.assignments.get(doc_id)


class ShardPlanner:
    """Builds shard engines from an indexed source engine.

    The source engine must already hold the corpus (embeddings computed
    once, offline or via the parallel indexer); the planner only re-deals
    the stored documents, so planning costs index inserts — never an NLP
    or ``G*`` pass.
    """

    def __init__(self, source: "NewsLinkEngine", num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if source.config.fusion.normalize:
            raise ConfigError(
                "sharded serving requires fusion.normalize=False: per-query "
                "max-normalization needs global score maxima no shard can "
                "compute locally"
            )
        self._source = source
        self._num_shards = num_shards

    def build(self) -> "tuple[ShardPlan, list[NewsLinkEngine]]":
        """Deal the corpus into shard engines; returns (plan, engines).

        Documents are assigned round-robin in insertion order —
        deterministic, balanced to within one document, and independent
        of doc-id spelling.  Each shard engine gets a **private**
        :class:`MetricsRegistry` (worker processes fold these back at
        scrape time; sharing the parent's registry would double-count
        after fork) and is :meth:`~NewsLinkEngine.precompile`-d so the
        compiled graph, packed posting snapshots and BM25 caches are
        materialized pre-fork and shared copy-on-write.
        """
        from repro.search.engine import NewsLinkEngine

        source = self._source
        shards = [
            NewsLinkEngine(
                source.graph,
                source.config,
                label_index=source.label_index,
                registry=MetricsRegistry(),
            )
            for _ in range(self._num_shards)
        ]
        assignments: dict[str, int] = {}
        doc_counts = [0] * self._num_shards
        for position, doc_id in enumerate(source.indexed_doc_ids()):
            shard_id = position % self._num_shards
            shards[shard_id].add_embedded_document(
                doc_id,
                source.document_text(doc_id),
                source.embedding(doc_id),
            )
            assignments[doc_id] = shard_id
            doc_counts[shard_id] += 1
        text_stats = CorpusStats.of_index(source.text_index)
        node_stats = CorpusStats.of_index(source.node_index)
        for shard in shards:
            shard.set_corpus_stats(text_stats, node_stats)
            shard.precompile()
        plan = ShardPlan(
            num_shards=self._num_shards,
            assignments=assignments,
            doc_counts=tuple(doc_counts),
        )
        return plan, shards

    def precompile(self) -> None:
        """Materialize the source engine's shareable state pre-fork.

        Call before forking workers that serve the *source* engine
        directly (mmap-loaded single-shard deployments): the compiled
        graph, posting snapshots and BM25 caches build once in the
        parent, and — when the source was mmap-loaded — the CRC pass at
        load already prefaulted the mapped sections, so forked children
        share every page copy-on-write instead of each re-deriving it.
        """
        self._source.precompile()
