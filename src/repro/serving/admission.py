"""Admission control: bounded in-flight work + deadline-aware shedding.

Without admission control an overloaded coordinator queues without
bound: every request eventually gets served, but only after waiting so
long that its deadline (and the client) are long gone — p99 latency
grows with the backlog, which grows without limit.  The controller
turns that failure mode into explicit, *fast* rejection:

* at most ``max_inflight`` queries execute concurrently (default: the
  per-shard worker count — more would just queue inside the shard
  pools);
* at most ``max_queue`` queries wait for a slot; an arrival beyond that
  is shed immediately with reason ``"queue_full"`` (HTTP 429);
* a queued query whose :class:`~repro.utils.deadline.Deadline` expires
  before a slot frees is shed with reason ``"deadline"`` — serving it
  would burn a slot producing an answer nobody is waiting for.

``max_queue=None`` disables shedding entirely (unbounded queueing) —
that is the *control arm* of ``benchmarks/bench_serving.py``'s overload
experiment, kept deliberately so the benchmark can show shedding
holding p99 bounded while the unbounded policy does not.

The controller is engine-agnostic and registry-free; the coordinator
reads :meth:`snapshot` at scrape time (collector-driven, like every
other stats silo).
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import Condition
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigError, OverloadShedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.deadline import Deadline


class AdmissionController:
    """A counting slot gate with a bounded, deadline-aware wait queue."""

    def __init__(
        self,
        max_inflight: int,
        max_queue: int | None = 16,
        shed_on_deadline: bool = True,
    ) -> None:
        if max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue is not None and max_queue < 0:
            raise ConfigError(
                f"max_queue must be >= 0 or None, got {max_queue}"
            )
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._shed_on_deadline = shed_on_deadline
        self._cond = Condition()
        self._inflight = 0
        self._queued = 0
        self._admitted = 0
        self._peak_queued = 0
        self._shed = {"queue_full": 0, "deadline": 0}

    # -- configuration -------------------------------------------------
    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @property
    def max_queue(self) -> int | None:
        return self._max_queue

    # -- the gate ------------------------------------------------------
    def acquire(self, deadline: "Deadline | None" = None) -> None:
        """Take a serving slot, queueing within policy; sheds by raising.

        Raises :class:`OverloadShedError` with ``reason="queue_full"``
        when the wait queue is at capacity, or ``reason="deadline"``
        when ``deadline`` expires at admission or while queued.
        """
        with self._cond:
            # Fast path: a free slot and nobody ahead of us in line.
            if self._inflight < self._max_inflight and self._queued == 0:
                self._inflight += 1
                self._admitted += 1
                return
            if (
                self._max_queue is not None
                and self._queued >= self._max_queue
            ):
                self._shed["queue_full"] += 1
                raise OverloadShedError(
                    "queue_full", f"{self._queued} queries already waiting"
                )
            if (
                self._shed_on_deadline
                and deadline is not None
                and deadline.expired()
            ):
                self._shed["deadline"] += 1
                raise OverloadShedError(
                    "deadline", "expired before admission"
                )
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)
            try:
                while self._inflight >= self._max_inflight:
                    if self._shed_on_deadline and deadline is not None:
                        remaining_s = deadline.remaining_ms() / 1000.0
                        if remaining_s <= 0.0:
                            self._shed["deadline"] += 1
                            raise OverloadShedError(
                                "deadline", "expired while queued"
                            )
                        self._cond.wait(timeout=remaining_s)
                    else:
                        self._cond.wait()
                self._inflight += 1
                self._admitted += 1
            finally:
                self._queued -= 1

    def release(self) -> None:
        """Return a slot (wakes one queued waiter)."""
        with self._cond:
            self._inflight -= 1
            self._cond.notify()

    @contextmanager
    def slot(self, deadline: "Deadline | None" = None) -> Iterator[None]:
        """``with admission.slot(deadline):`` — acquire/release paired."""
        self.acquire(deadline)
        try:
            yield
        finally:
            self.release()

    # -- observability -------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time counters (scraped into ``/stats``)."""
        with self._cond:
            return {
                "max_inflight": self._max_inflight,
                "max_queue": self._max_queue,
                "inflight": self._inflight,
                "queued": self._queued,
                "peak_queued": self._peak_queued,
                "admitted": self._admitted,
                "shed": dict(self._shed),
            }
