"""Equation 3 score fusion.

``F(T_q, T_c) = (1 - beta) * F_BOW(T_q, T_c) + beta * F_BON(G*_q, G*_c)
+ gamma * F_CTX(G*_u, G*_c)``

The optional third term blends a personalization/session context subgraph
(the union of a user's click-history embeddings, or the accumulated query
subgraph of a conversational session — see :mod:`repro.personalize`)
scored on the same node index as the BON channel.  With ``gamma = 0`` the
term vanishes and fusion is bit-identical to the two-channel form.

All channels are BM25 scores, combined raw by default as in the paper:
raw magnitudes carry confidence, so a query whose subgraph embedding is
weak naturally contributes little BON mass.  Per-query max-normalization
is available as an option and compared in
``benchmarks/bench_ablation_fusion.py``.  With ``beta = 0`` the fused
ranking equals the text-only (Lucene) ranking; with ``beta = 1`` it is
purely the subgraph-embedding ranking.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.config import FusionConfig


def _max_normalize(scores: Mapping[str, float]) -> dict[str, float]:
    if not scores:
        return {}
    peak = max(scores.values())
    if peak <= 0:
        return dict(scores)
    return {doc_id: value / peak for doc_id, value in scores.items()}


def supports_pruned_ranking(config: FusionConfig | None = None) -> bool:
    """Whether Equation 3 fusion can be served by dynamic pruning.

    Per-query max-normalization divides each channel by its *maximum*
    score, which is only known after every matching document has been
    scored — so ``normalize=True`` forces the exhaustive path (the fused
    score is no longer a document-wise monotone aggregation of per-term
    contributions).  Raw fusion (the paper's default) is a weighted sum
    with fixed weights, exactly the setting MaxScore-style pruning
    (:class:`repro.search.pruned.FusedRanker`) requires.
    """
    config = config or FusionConfig()
    return not config.normalize


def fuse_scores(
    bow_scores: Mapping[str, float],
    bon_scores: Mapping[str, float],
    config: FusionConfig | None = None,
    profile_scores: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Combine the channels per Equation 3.

    ``profile_scores`` is the optional context channel (profile/session
    subgraph nodes scored on the node index), weighted by
    ``config.gamma``.  Passing ``None``/empty — or ``gamma = 0`` — skips
    the loop entirely, so the two-channel result is reproduced without a
    single extra floating-point operation.
    """
    config = config or FusionConfig()
    beta = config.beta
    gamma = config.gamma
    if config.normalize:
        bow_scores = _max_normalize(bow_scores)
        bon_scores = _max_normalize(bon_scores)
        if profile_scores:
            profile_scores = _max_normalize(profile_scores)
    fused: dict[str, float] = {}
    if beta < 1.0:
        for doc_id, score in bow_scores.items():
            fused[doc_id] = (1.0 - beta) * score
    if beta > 0.0:
        for doc_id, score in bon_scores.items():
            fused[doc_id] = fused.get(doc_id, 0.0) + beta * score
    if gamma > 0.0 and profile_scores:
        for doc_id, score in profile_scores.items():
            fused[doc_id] = fused.get(doc_id, 0.0) + gamma * score
    return fused
