"""Compiled packed posting lists with block-max metadata — the query
fast path's memory layout.

``FusedRanker``'s reference path (``repro.search.pruned``) is exact and
prunes well by *candidate counts*, but every posting it touches is a
``(str, int)`` tuple inside a Python list and every score fold is a dict
lookup — the per-candidate constant swamps the pruning win on small
corpora (BENCH_query.json).  This module is the same document-at-a-time
loop over a compiled layout, mirroring :meth:`KnowledgeGraph.compiled`
(``repro.kg.csr``):

* doc ids are interned to dense ints **in sorted order**, so int
  comparisons order exactly like the reference's string comparisons and
  the ascending-doc-id tie-break is ``-doc_int`` in a min-heap — no
  wrapper objects (see :mod:`repro.search.order`);
* each term's postings become two parallel packed arrays —
  ``array('I')`` doc ints ascending and ``array('I')`` term frequencies.
  Doc ints are stored *absolute*, not delta-encoded: without varint
  compression a delta costs the same four bytes but forfeits
  ``bisect``-based cursor advance, which the skip logic depends on;
* per block of :data:`BLOCK_SIZE` postings the layout keeps the last doc
  int and the maximum tf, and :meth:`Bm25Scorer.compiled_term` derives a
  per-term ``array('d')`` of exact BM25 contributions plus per-block
  contribution maxima, so the inner loop is pure int/float array walking
  with zero dict lookups;
* block maxima let the ranker skip *whole blocks*: when every matched
  cursor's current block cannot reach the heap threshold even with all
  non-essential terms, the cursors jump past the block boundary instead
  of stepping one document at a time (BMW-style).

Exactness
---------
Ranked output is bit-identical to the reference ranker, property-tested
in ``tests/search/test_compiled_index.py``:

* contribution tables are computed with the exact float expression of
  :meth:`Bm25Scorer.term_contribution` (same IDF and norm values, same
  association), so exact scores are the same floats;
* per-channel sums fold in query-term ordinal order and combine exactly
  like the reference (and :func:`repro.search.fusion.fuse_scores`);
* block maxima and the per-term exact maximum are true upper bounds on
  the stored contributions; every prune comparison inflates by the same
  relative ``_SAFETY`` margin and stays strict, so pruning can only skip
  documents the reference would also never keep.

The block-skip horizon is the conservative BMW rule: from candidate
``c`` with matched essential cursors ``M``, it is safe to jump every
cursor in ``M`` past ``d = min(min block-end over M, min current doc of
the other essential cursors - 1)`` — any document in ``(c, d]`` is
matched only by a subset of ``M`` (within their current blocks, so the
block maxima apply) plus non-essential terms already covered by the
prefix bound.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left, bisect_right
from collections import Counter
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.config import FusionConfig
from repro.search.pruned import _SAFETY, FusedHit, QueryStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.search.bm25 import Bm25Scorer
    from repro.search.inverted_index import InvertedIndex

try:  # numpy accelerates table construction; results are identical.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

#: Postings per block-max block.  64 keeps block metadata ~1.6% of the
#: posting arrays while letting a single skip clear dozens of documents.
BLOCK_SHIFT = 6
BLOCK_SIZE = 1 << BLOCK_SHIFT

#: Sentinel doc int for an exhausted cursor; larger than any dense id.
_EXHAUSTED = 1 << 40


class CompiledTermPostings:
    """One term's postings as packed parallel arrays plus block metadata.

    ``docs`` holds dense doc ints ascending, ``tfs`` the matching term
    frequencies.  ``block_last[b]`` is the last doc int of block ``b``
    and ``block_max_tf[b]`` its largest tf — enough for a scorer to
    derive contribution bounds without touching the postings.
    """

    __slots__ = ("docs", "tfs", "block_last", "block_max_tf", "max_tf")

    def __init__(self, docs: array, tfs: array) -> None:
        self.docs = docs
        self.tfs = tfs
        size = len(docs)
        num_blocks = (size + BLOCK_SIZE - 1) >> BLOCK_SHIFT
        block_last = array("I")
        block_max_tf = array("I")
        for block in range(num_blocks):
            start = block << BLOCK_SHIFT
            end = min(size, start + BLOCK_SIZE)
            block_last.append(docs[end - 1])
            block_max_tf.append(max(tfs[start:end]))
        self.block_last = block_last
        self.block_max_tf = block_max_tf
        self.max_tf = max(block_max_tf) if block_max_tf else 0

    @classmethod
    def from_parts(
        cls,
        docs: array,
        tfs,
        block_last,
        block_max_tf,
        max_tf: int,
    ) -> "CompiledTermPostings":
        """Rehydrate from already-computed parts (the packed v3 loader).

        Skips the block-metadata recompute of ``__init__``: the on-disk
        layout stores ``block_last``/``block_max_tf`` verbatim, so the
        loader hands them back without touching every posting.  ``tfs``
        and the block arrays may be zero-copy ``memoryview`` casts over
        a mapped file — every consumer reads them positionally.
        """
        self = object.__new__(cls)
        self.docs = docs
        self.tfs = tfs
        self.block_last = block_last
        self.block_max_tf = block_max_tf
        self.max_tf = max_tf
        return self

    def __len__(self) -> int:
        return len(self.docs)

    @property
    def num_blocks(self) -> int:
        return len(self.block_last)

    def memory_bytes(self) -> int:
        """Approximate heap bytes of the packed arrays."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (self.docs, self.tfs, self.block_last, self.block_max_tf)
        )


class CompiledPostings:
    """A version-keyed packed snapshot of one :class:`InvertedIndex`.

    Mirrors :meth:`KnowledgeGraph.compiled`: built once per index
    version (see :meth:`InvertedIndex.compiled`), immutable, and safe to
    share across scorers and queries.  ``doc_ids`` interns doc ids to
    dense ints **in sorted order** so int order equals string order.
    """

    __slots__ = (
        "version",
        "doc_ids",
        "index_of",
        "doc_lengths",
        "avg_doc_length",
        "_terms",
    )

    def __init__(
        self,
        version: int,
        doc_ids: tuple[str, ...],
        doc_lengths: array,
        avg_doc_length: float,
        terms: dict[str, CompiledTermPostings],
    ) -> None:
        self.version = version
        self.doc_ids = doc_ids
        self.index_of = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        self.doc_lengths = doc_lengths
        self.avg_doc_length = avg_doc_length
        self._terms = terms

    @classmethod
    def from_index(
        cls,
        index: "InvertedIndex",
        universe: tuple[str, ...] | None = None,
    ) -> "CompiledPostings":
        """Compile ``index`` against ``universe`` (default: its own docs).

        ``universe`` must be a sorted superset of the index's doc ids; a
        caller fusing two indexes passes the shared universe so both
        snapshots intern into the same int space.
        """
        if universe is None:
            universe = tuple(sorted(index.doc_ids()))
        index_of = {doc_id: i for i, doc_id in enumerate(universe)}
        lengths = index.doc_lengths()
        doc_lengths = array("I", (lengths.get(doc_id, 0) for doc_id in universe))
        terms: dict[str, CompiledTermPostings] = {}
        for term in index.vocabulary():
            docs = array("I")
            tfs = array("I")
            # sorted_postings is ascending by doc id; interning is
            # monotone in string order, so the int array is ascending.
            for doc_id, tf in index.sorted_postings(term):
                docs.append(index_of[doc_id])
                tfs.append(tf)
            terms[term] = CompiledTermPostings(docs, tfs)
        return cls(
            index.version, universe, doc_lengths, index.avg_doc_length, terms
        )

    def term(self, term: str) -> CompiledTermPostings | None:
        """The packed postings of ``term`` (None when unseen)."""
        return self._terms.get(term)

    @property
    def num_docs(self) -> int:
        return len(self.doc_ids)

    @property
    def num_terms(self) -> int:
        return len(self._terms)

    def vocabulary(self) -> Iterable[str]:
        return self._terms.keys()

    def memory_bytes(self) -> int:
        """Approximate heap bytes of all packed arrays (layout metric)."""
        total = self.doc_lengths.itemsize * len(self.doc_lengths)
        for postings in self._terms.values():
            total += postings.memory_bytes()
        return total


class CompiledTermScores:
    """One (scorer, term) pair's precomputed contribution table.

    ``contrib[i]`` is the exact BM25 contribution of posting ``i`` (the
    same float :meth:`Bm25Scorer.term_contribution` returns),
    ``block_max[b]`` the exact maximum over block ``b``, and ``upper``
    the exact maximum over the whole list — a bound at least as tight as
    :meth:`Bm25Scorer.term_upper_bound`.
    """

    __slots__ = ("docs", "contrib", "block_max", "block_last", "upper", "_sorted_block_max")

    def __init__(
        self,
        docs: array,
        contrib: array,
        block_max: array,
        block_last: array,
    ) -> None:
        self.docs = docs
        self.contrib = contrib
        self.block_max = block_max
        self.block_last = block_last
        self.upper = max(block_max) if block_max else 0.0
        self._sorted_block_max: array | None = None

    @property
    def df(self) -> int:
        return len(self.docs)

    @property
    def num_blocks(self) -> int:
        return len(self.block_max)

    def sorted_block_maxima(self) -> array:
        """Block maxima ascending (planner skip-fraction estimates)."""
        cached = self._sorted_block_max
        if cached is None:
            cached = array("d", sorted(self.block_max))
            self._sorted_block_max = cached
        return cached


def build_term_scores(
    postings: CompiledTermPostings,
    idf: float,
    k1: float,
    norms: array,
) -> CompiledTermScores:
    """Precompute one term's contribution table against dense norms.

    ``norms`` is ``array('d')`` indexed by dense doc int.  The float
    expression matches :meth:`Bm25Scorer.term_contribution` exactly
    (same values, same association), on the numpy path too — elementwise
    IEEE-754 double ops round identically to the scalar ones.
    """
    docs = postings.docs
    tfs = postings.tfs
    if _np is not None and docs.itemsize == 4 and norms.itemsize == 8:
        tf = _np.frombuffer(tfs, dtype=_np.uint32).astype(_np.float64)
        doc_norms = _np.frombuffer(norms, dtype=_np.float64)[
            _np.frombuffer(docs, dtype=_np.uint32)
        ]
        values = idf * (tf * (k1 + 1.0)) / (tf + k1 * doc_norms)
        contrib = array("d")
        contrib.frombytes(values.tobytes())
    else:
        contrib = array(
            "d",
            (
                idf * (tf * (k1 + 1.0)) / (tf + k1 * norms[doc])
                for doc, tf in zip(docs, tfs)
            ),
        )
    size = len(contrib)
    block_max = array("d")
    for start in range(0, size, BLOCK_SIZE):
        block_max.append(max(contrib[start : start + BLOCK_SIZE]))
    return CompiledTermScores(docs, contrib, block_max, postings.block_last)


class _BlockCursor:
    """A packed-array posting cursor with block-max metadata.

    ``scale`` is ``channel_weight * weight`` — multiplied into block
    maxima for prune bounds; ``eff_bound`` is the whole-list effective
    bound MaxScore orders and sums (same formula as the reference).
    """

    __slots__ = (
        "term",
        "docs",
        "contrib",
        "block_max",
        "block_last",
        "size",
        "position",
        "current",
        "weight",
        "scale",
        "eff_bound",
        "channel",
        "ordinal",
    )

    def __init__(
        self,
        term: str,
        table: CompiledTermScores,
        weight: float,
        scale: float,
        eff_bound: float,
        channel: int,
        ordinal: int,
    ) -> None:
        self.term = term
        self.docs = table.docs
        self.contrib = table.contrib
        self.block_max = table.block_max
        self.block_last = table.block_last
        self.size = len(table.docs)
        self.position = 0
        self.current = table.docs[0] if table.docs else _EXHAUSTED
        self.weight = weight
        self.scale = scale
        self.eff_bound = eff_bound
        self.channel = channel
        self.ordinal = ordinal

    def step(self) -> None:
        position = self.position + 1
        self.position = position
        self.current = self.docs[position] if position < self.size else _EXHAUSTED

    def advance_to(self, doc: int) -> int:
        """Move to the first posting with doc int >= ``doc``; returns the jump."""
        start = self.position
        position = bisect_left(self.docs, doc, start)
        self.position = position
        self.current = self.docs[position] if position < self.size else _EXHAUSTED
        return position - start

    def advance_past(self, doc: int) -> int:
        """Move to the first posting with doc int > ``doc``; returns the jump."""
        start = self.position
        position = bisect_right(self.docs, doc, start)
        self.position = position
        self.current = self.docs[position] if position < self.size else _EXHAUSTED
        return position - start


def _build_cursors(
    scorers: tuple["Bm25Scorer", "Bm25Scorer"],
    snapshots: tuple[CompiledPostings, CompiledPostings],
    bow_terms: Sequence[str],
    bon_terms: Sequence[str],
    channel_weights: tuple[float, float, float],
    profile_terms: Sequence[str] = (),
) -> list[_BlockCursor]:
    cursors: list[_BlockCursor] = []
    ordinal = 0
    for channel, terms in enumerate((bow_terms, bon_terms, profile_terms)):
        channel_weight = channel_weights[channel]
        if channel_weight <= 0.0 or not terms:
            continue
        # Channel 2 (context) scores on the node index, same as BON.
        source = min(channel, 1)
        scorer = scorers[source]
        snapshot = snapshots[source]
        for term, weight in Counter(terms).items():
            table = scorer.compiled_term(term, snapshot)
            if table is None:
                continue
            eff = channel_weight * (weight * table.upper)
            cursors.append(
                _BlockCursor(
                    term,
                    table,
                    weight,
                    channel_weight * weight,
                    eff,
                    channel,
                    ordinal,
                )
            )
            ordinal += 1
    return cursors


def _prefix_bounds(cursors: list[_BlockCursor]) -> list[float]:
    """prefix[i] = sum of the i cheapest cursors' effective bounds."""
    prefix = [0.0] * (len(cursors) + 1)
    for i, cursor in enumerate(cursors):
        prefix[i + 1] = prefix[i] + cursor.eff_bound
    return prefix


def _boundary(prefix: list[float], count: int, threshold: float) -> int:
    """How many of the cheapest cursors are non-essential (see pruned.py)."""
    f = 0
    while f < count and prefix[f + 1] * _SAFETY < threshold:
        f += 1
    return f


def fused_top_k(
    scorers: tuple["Bm25Scorer", "Bm25Scorer"],
    snapshots: tuple[CompiledPostings, CompiledPostings],
    universe: tuple[str, ...],
    bow_terms: Sequence[str],
    bon_terms: Sequence[str],
    k: int,
    fusion: FusionConfig | None = None,
    profile_terms: Sequence[str] = (),
) -> tuple[list[FusedHit], QueryStats]:
    """Compiled block-max variant of :meth:`FusedRanker.top_k`.

    Both snapshots must intern into ``universe`` (the same dense int
    space) — :meth:`FusedRanker` guarantees this by reusing each index's
    own snapshot when the doc sets coincide and compiling against the
    sorted union otherwise.  ``profile_terms`` (context channel, weighted
    by ``fusion.gamma``) score on the node snapshot.  Output is
    bit-identical to the reference.
    """
    fusion = fusion or FusionConfig()
    beta = fusion.beta
    channel_weights = (1.0 - beta, beta, fusion.gamma)
    stats = QueryStats(queries=1, pruned_queries=1)
    if k <= 0:
        return [], stats
    cursors = _build_cursors(
        scorers, snapshots, bow_terms, bon_terms, channel_weights, profile_terms
    )
    if not cursors:
        return [], stats
    cursors.sort(key=lambda c: c.eff_bound)
    prefix = _prefix_bounds(cursors)

    # Min-heap of (score, -doc_int, bow_sum, bon_sum, ctx_sum): ints are
    # interned in sorted order, so -doc_int reverses doc order exactly
    # like the reference's _ReverseStr wrapper (repro.search.order).
    heap: list[tuple[float, int, float, float, float]] = []
    threshold = float("-inf")
    first_essential = 0

    num_cursors = len(cursors)
    while True:
        # Next candidate: smallest current doc over *essential* cursors.
        candidate = _EXHAUSTED
        matches: list[_BlockCursor] = []
        for i in range(first_essential, num_cursors):
            cursor = cursors[i]
            doc = cursor.current
            if doc < candidate:
                candidate = doc
                matches = [cursor]
            elif doc == candidate and doc != _EXHAUSTED:
                matches.append(cursor)
        if candidate == _EXHAUSTED:
            break

        # Block-refined quick check: bound the matched cursors by their
        # *current block* maxima (tighter than whole-list bounds), plus
        # every non-essential term's whole-list bound.
        block_bound = 0.0
        for cursor in matches:
            block_bound += (
                cursor.scale * cursor.block_max[cursor.position >> BLOCK_SHIFT]
            )
        if (
            len(heap) == k
            and (block_bound + prefix[first_essential]) * _SAFETY < threshold
        ):
            # The whole remainder of every matched block is prunable, not
            # just this candidate: any doc in (candidate, horizon] is
            # matched only by a subset of `matches` (still within their
            # current blocks) plus non-essential terms — all covered by
            # the failed bound above.  Jump past the horizon in one go.
            horizon = _EXHAUSTED
            for cursor in matches:
                last = cursor.block_last[cursor.position >> BLOCK_SHIFT]
                if last < horizon:
                    horizon = last
            for i in range(first_essential, num_cursors):
                doc = cursors[i].current
                if candidate < doc <= horizon:
                    horizon = doc - 1
            if horizon > candidate:
                stats.blocks_skipped += 1
            stats.docs_pruned += 1
            for cursor in matches:
                moved = cursor.advance_past(horizon)
                stats.postings_advanced += moved
                if moved > 1:
                    stats.cursor_skips += 1
        else:
            # Probe non-essential cursors (binary-search skip).
            for i in range(first_essential):
                cursor = cursors[i]
                if cursor.current == _EXHAUSTED:
                    continue
                moved = cursor.advance_to(candidate)
                stats.postings_advanced += moved
                if moved > 1:
                    stats.cursor_skips += 1
                if cursor.current == candidate:
                    matches.append(cursor)
            bound = 0.0
            for cursor in matches:
                bound += (
                    cursor.scale
                    * cursor.block_max[cursor.position >> BLOCK_SHIFT]
                )
            if len(heap) == k and bound * _SAFETY < threshold:
                stats.docs_pruned += 1
                for cursor in matches:
                    cursor.step()
                    stats.postings_advanced += 1
            else:
                # Exact score: per-channel left folds in query-term
                # order, combined exactly like the reference ranker.
                matches.sort(key=lambda c: c.ordinal)
                sums = [0.0, 0.0, 0.0]
                matched = [False, False, False]
                for cursor in matches:
                    contribution = cursor.contrib[cursor.position]
                    sums[cursor.channel] = (
                        sums[cursor.channel] + cursor.weight * contribution
                    )
                    matched[cursor.channel] = True
                    cursor.step()
                    stats.postings_advanced += 1
                score = 0.0
                if matched[0]:
                    score = channel_weights[0] * sums[0]
                if matched[1]:
                    score = score + channel_weights[1] * sums[1]
                if matched[2]:
                    score = score + channel_weights[2] * sums[2]
                stats.candidates_examined += 1
                entry = (
                    score,
                    -candidate,
                    sums[0] if matched[0] else 0.0,
                    sums[1] if matched[1] else 0.0,
                    sums[2] if matched[2] else 0.0,
                )
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
                if len(heap) == k and heap[0][0] != threshold:
                    threshold = heap[0][0]
                    first_essential = _boundary(
                        prefix, len(cursors), threshold
                    )

        # Compact exhausted cursors so their bounds stop inflating the
        # non-essential budget (mirrors the reference ranker).
        if any(cursor.current == _EXHAUSTED for cursor in cursors):
            cursors = [c for c in cursors if c.current != _EXHAUSTED]
            num_cursors = len(cursors)
            prefix = _prefix_bounds(cursors)
            first_essential = _boundary(prefix, num_cursors, threshold)

    ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
    return (
        [
            FusedHit(universe[-neg_doc], score, bow, bon, ctx)
            for score, neg_doc, bow, bon, ctx in ranked
        ],
        stats,
    )
