"""v3 on-disk container: CRC-checked named binary sections, mmap-ready.

Layout (all integers little-endian)::

    offset  size          content
    0       8             magic  b"NLIDX3\\x00\\n"
    8       4             uint32 header length in bytes
    12      4             uint32 CRC-32 of the header bytes
    16      header_len    header JSON (utf-8)
    ...     pad           zero padding to a 16-byte boundary
    base    ...           section payloads, each zero-padded to 16 bytes

The header JSON is ``{"format": "newslink-index", "version": 3,
"meta": {...}, "sections": [{"name", "offset", "length", "crc32"},
...]}`` where ``offset`` is relative to ``base`` (the first 16-byte
boundary after the header) — relative offsets keep the header length
independent of its own size.  16-byte alignment guarantees every
``uint32`` column can be ``memoryview.cast`` directly over the map.

Reading verifies the magic, the header CRC, and **every section's**
length bound and CRC-32 eagerly in both load modes; any mismatch
raises :class:`~repro.errors.IndexCorruptError` naming the section.
(For mmap loads the CRC pass doubles as a page prefault, so forked
shard workers share already-resident pages copy-on-write.)

Writing is deterministic — no timestamps, pids, or hash-seed-dependent
ordering — so repeated saves of the same engine state are byte-equal
(``test_save_is_deterministic``).

On top of the raw container this module assembles and re-opens the
NewsLink index bundle: postings columns for the text/node indexes
(``repro.search.packed``), the embedding/text arenas
(``repro.core.embedding_store``), the shared sorted doc-id universe
and the insertion-order permutation.
"""

from __future__ import annotations

import json
import struct
import zlib
from array import array
from collections.abc import Mapping

from repro.core.embedding_store import (
    PackedEmbeddingStore,
    PackedTextStore,
    pack_embeddings,
    pack_texts,
)
from repro.errors import IndexCorruptError
from repro.search.packed import (
    FrozenInvertedIndex,
    PackedPostingsReader,
    pack_postings,
)

MAGIC = b"NLIDX3\x00\n"
_ALIGN = 16
_HEADER_STRUCT = struct.Struct("<8sII")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ----------------------------------------------------------------------
# Raw container.


def container_bytes(meta: dict, sections: list[tuple[str, bytes]]) -> bytes:
    """Serialize named sections into one deterministic container blob."""
    entries = []
    offset = 0
    for name, payload in sections:
        entries.append(
            {
                "name": name,
                "offset": offset,
                "length": len(payload),
                "crc32": zlib.crc32(payload),
            }
        )
        offset = _aligned(offset + len(payload))
    header = json.dumps(
        {
            "format": "newslink-index",
            "version": 3,
            "meta": meta,
            "sections": entries,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    out = bytearray()
    out += _HEADER_STRUCT.pack(MAGIC, len(header), zlib.crc32(header))
    out += header
    out += b"\x00" * (_aligned(len(out)) - len(out))
    for entry, (_, payload) in zip(entries, sections):
        out += payload
        out += b"\x00" * (_aligned(len(out)) - len(out))
    return bytes(out)


def read_container(
    buffer, path
) -> tuple[dict, dict[str, memoryview]]:
    """Open a container over ``buffer`` (bytes or mmap), verifying CRCs.

    Every section is bounds- and CRC-checked eagerly; corruption raises
    :class:`IndexCorruptError` naming the failing section.
    """
    view = memoryview(buffer)
    if len(view) < _HEADER_STRUCT.size:
        raise IndexCorruptError(path, "file too short for a v3 header")
    magic, header_len, header_crc = _HEADER_STRUCT.unpack_from(view, 0)
    if magic != MAGIC:
        raise IndexCorruptError(path, "bad v3 magic")
    header_end = _HEADER_STRUCT.size + header_len
    if header_end > len(view):
        raise IndexCorruptError(path, "header truncated")
    header_bytes = view[_HEADER_STRUCT.size : header_end]
    if zlib.crc32(header_bytes) != header_crc:
        raise IndexCorruptError(path, "header checksum mismatch")
    try:
        header = json.loads(bytes(header_bytes))
    except ValueError as exc:
        raise IndexCorruptError(path, "header is not valid JSON") from exc
    if (
        not isinstance(header, dict)
        or header.get("format") != "newslink-index"
        or header.get("version") != 3
    ):
        raise IndexCorruptError(path, "not a v3 newslink index header")
    base = _aligned(header_end)
    sections: dict[str, memoryview] = {}
    for entry in header.get("sections", ()):
        name = entry["name"]
        start = base + entry["offset"]
        end = start + entry["length"]
        if end > len(view):
            raise IndexCorruptError(path, f"section '{name}' truncated")
        payload = view[start:end]
        if zlib.crc32(payload) != entry["crc32"]:
            raise IndexCorruptError(
                path, f"section '{name}' checksum mismatch"
            )
        sections[name] = payload
    return header.get("meta", {}), sections


# ----------------------------------------------------------------------
# NewsLink bundle assembly.


def build_index_container(
    text_index,
    node_index,
    embeddings: Mapping,
    texts: Mapping[str, str],
    insertion_order,
) -> bytes:
    """Pack full engine persistence state into v3 container bytes.

    ``insertion_order`` is the engine's original document insertion
    order (``list(engine._embeddings)``); the sorted universe plus the
    stored permutation reproduce it exactly at load.
    """
    universe = text_index.compiled().doc_ids
    index_of = {doc_id: i for i, doc_id in enumerate(universe)}
    order = array("I", (index_of[doc_id] for doc_id in insertion_order))
    if len(order) != len(universe):
        raise ValueError(
            "insertion order does not cover the indexed document set"
        )
    text_meta, text_columns = pack_postings(text_index, universe)
    node_meta, node_columns = pack_postings(node_index, universe)
    sections: list[tuple[str, bytes]] = [
        (
            "docids",
            json.dumps(list(universe), ensure_ascii=False).encode("utf-8"),
        ),
        ("order", order.tobytes()),
    ]
    sections += [(f"text.{n}", p) for n, p in text_columns.items()]
    sections += [(f"node.{n}", p) for n, p in node_columns.items()]
    sections += [
        (f"emb.{n}", p) for n, p in pack_embeddings(embeddings, universe).items()
    ]
    sections += [
        (f"txt.{n}", p) for n, p in pack_texts(texts, universe).items()
    ]
    meta = {
        "num_docs": len(universe),
        "text": text_meta,
        "node": node_meta,
    }
    return container_bytes(meta, sections)


def _column_group(
    sections: Mapping[str, memoryview], prefix: str, path
) -> dict[str, memoryview]:
    group = {
        name[len(prefix) :]: payload
        for name, payload in sections.items()
        if name.startswith(prefix)
    }
    if not group:
        raise IndexCorruptError(path, f"missing '{prefix}*' sections")
    return group


class FrozenIndexBundle:
    """All engine persistence state, opened zero-copy over one buffer.

    Holds the mapped buffer alive for as long as any lazy view may
    reference it.  Both frozen indexes share the *same* universe tuple
    object, so the fused ranker's shared-universe fast path
    (``FusedRanker.compiled_state``) applies without re-interning.
    """

    def __init__(self, path, buffer, mapped=None) -> None:
        meta, sections = read_container(buffer, path)
        try:
            universe = tuple(json.loads(bytes(sections["docids"])))
            index_of = {doc_id: i for i, doc_id in enumerate(universe)}
            order = memoryview(sections["order"]).cast("I")
            insertion = [universe[slot] for slot in order]
            self.text_index = FrozenInvertedIndex(
                PackedPostingsReader(
                    _column_group(sections, "text.", path),
                    universe,
                    index_of,
                    meta["text"],
                )
            )
            self.node_index = FrozenInvertedIndex(
                PackedPostingsReader(
                    _column_group(sections, "node.", path),
                    universe,
                    index_of,
                    meta["node"],
                )
            )
            self.embeddings = PackedEmbeddingStore(
                _column_group(sections, "emb.", path),
                universe,
                index_of,
                insertion,
            )
            self.texts = PackedTextStore(
                _column_group(sections, "txt.", path),
                universe,
                index_of,
                insertion,
            )
        except IndexCorruptError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            raise IndexCorruptError(
                path, f"malformed v3 bundle: {exc}"
            ) from exc
        self.universe = universe
        self.insertion_order = insertion
        self.num_docs = len(universe)
        self._buffer = buffer
        self._mapped = mapped

    def mapped_bytes(self) -> int:
        """Total bytes of the underlying buffer (mapped or in-heap)."""
        return len(self._buffer)
