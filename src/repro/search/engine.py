"""The end-to-end NewsLink engine (architecture of Figure 2).

``NewsLinkEngine`` wires the three components together:

* **NLP** — sentence segmentation, NER, maximal entity co-occurrence sets;
* **NE**  — one ``G*`` per entity group, unioned into a document embedding;
* **NS**  — two inverted indexes (text terms and embedding nodes), BM25 on
  each, Equation 3 fusion, top-k ranking, and path explanations.

Each stage can be timed into a :class:`TimingBreakdown` for the Fig 7 and
Table VIII experiments.
"""

from __future__ import annotations

import gzip
import io
import json
import logging
import mmap as mmap_module
import os
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from repro.config import EngineConfig
from repro.core.document_embedding import (
    DocumentEmbedding,
    SegmentEmbedder,
    embed_document,
)
from typing import TYPE_CHECKING, NamedTuple, Sequence

from repro.core.explain import RelationshipPath, explain_pair, verbalize_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheStats
    from repro.core.presentation import Explanation, ExplanationOptions
    from repro.parallel.merge import IndexReport
    from repro.personalize import Session, UserProfile
    from repro.search.snippets import Snippet
from repro.core.lcag import LcagEmbedder, SearchStats
from repro.core.tree_emb import TreeEmbedder
from repro.data.document import Corpus, NewsDocument
from repro.errors import (
    DataError,
    DeadlineExpiredError,
    DocumentNotIndexedError,
    IndexCorruptError,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.label_index import LabelIndex
from repro.nlp.pipeline import NlpPipeline, ProcessedDocument
from repro.obs import EngineInstruments, disabled_registry, get_registry
from repro.obs.metrics import MetricsRegistry
from repro.reliability import faults
from repro.utils.deadline import Deadline
from repro.search.analyzer import Analyzer
from repro.search.bm25 import Bm25Scorer
from repro.search.bon import bon_terms
from repro.search.fusion import fuse_scores, supports_pruned_ranking
from repro.search.inverted_index import InvertedIndex
from repro.search.planner import QueryPlanner
from repro.search.pruned import FusedRanker, QueryStats
from repro.search.topk import top_k
from repro.utils.timing import TimingBreakdown

_logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SearchResult:
    """One ranked search result.

    Attributes:
        doc_id: the retrieved document.
        score: the fused Equation 3 score.
        bow_score: the text channel's (normalized) contribution basis.
        bon_score: the node channel's (normalized) contribution basis.
        profile_score: the personalization/session context channel's
            contribution basis (0.0 for anonymous queries or gamma=0).
        degraded: True when the query's deadline expired and this result
            came from the text-only fallback ranking.
        degraded_reason: human-readable reason for the degradation
            (None on the normal path).
    """

    doc_id: str
    score: float
    bow_score: float
    bon_score: float
    profile_score: float = 0.0
    degraded: bool = False
    degraded_reason: str | None = None


class _Crc32Writer:
    """Text-writer proxy that CRC32s everything written through it.

    Lets the streaming index writer checksum the payload without ever
    materializing it in memory.
    """

    __slots__ = ("_fh", "crc")

    def __init__(self, fh) -> None:
        self._fh = fh
        self.crc = 0

    def write(self, data: str) -> None:
        self.crc = zlib.crc32(data.encode("utf-8"), self.crc)
        self._fh.write(data)


class _QueryContext(NamedTuple):
    """Resolved personalization context for one query.

    ``key`` is the hashable identity — ``(kind, id, revision)`` triples
    for the supplied profile/session — that, together with ``gamma``,
    distinguishes this query's cache entry from the anonymous one and
    from any other context revision.  ``terms`` are the context-channel
    node terms the ranking consumes.
    """

    key: tuple
    terms: tuple[str, ...]
    gamma: float


class NewsLinkEngine:
    """Index a news corpus against a KG and search it with Equation 3."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: EngineConfig | None = None,
        label_index: LabelIndex | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or EngineConfig()
        # Observability: metrics + tracing bind to an explicit registry,
        # the process-wide default, or (metrics_enabled=False) the shared
        # permanently-off registry, in that order of preference.
        if registry is None:
            registry = (
                get_registry()
                if self._config.metrics_enabled
                else disabled_registry()
            )
        self._obs = EngineInstruments(
            registry, trace_capacity=self._config.trace_capacity
        )
        self._label_index = label_index or LabelIndex(graph)
        self._pipeline = NlpPipeline(
            self._label_index,
            self._config.ner,
            segment_window=self._config.segment_window,
        )
        self._embedder: SegmentEmbedder
        if self._config.use_tree_embedder:
            self._embedder = TreeEmbedder(graph, self._config.tree_emb)
        else:
            self._embedder = LcagEmbedder(graph, self._config.lcag)
        if self._config.disambiguate:
            from repro.nlp.disambiguation import DisambiguatingEmbedder

            self._embedder = DisambiguatingEmbedder(
                graph, self._embedder, self._config.disambiguation_distance
            )
        if self._config.cache_embeddings:
            from repro.core.cache import CachingEmbedder

            self._embedder = CachingEmbedder(
                self._embedder, self._config.cache_size
            )
        # Aggregate G* instrumentation across every embed this engine runs
        # (serial indexing, queries, and merged parallel-worker counters).
        self._search_stats = SearchStats()
        from repro.parallel.executor import sink_target

        base = sink_target(self._embedder)
        if base is not None:
            base.stats_sink = self._search_stats
        self._analyzer = Analyzer()
        self._text_index = InvertedIndex()
        self._node_index = InvertedIndex()
        # Optional corpus-wide BM25 statistics (document-partitioned
        # shard engines score their partial indexes with the whole
        # corpus's statistics so scatter-gather merges bit-identically).
        self._corpus_stats: "tuple | None" = None
        self._rebuild_scorers()
        self._query_stats = QueryStats()
        self._snippet_generator = None
        self._embeddings: dict[str, DocumentEmbedding] = {}
        self._texts: dict[str, str] = {}
        # Keyed (text, graph_version, context_key, gamma): personalized
        # and anonymous variants of the same query text are distinct
        # entries — see _cached_query_state and docs/personalization.md.
        self._query_cache: OrderedDict[
            tuple,
            tuple[ProcessedDocument, DocumentEmbedding, tuple[str, ...]],
        ] = OrderedDict()
        self._last_index_report: "IndexReport | None" = None
        # The mmap-backed bundle the frozen stores view into (None when
        # the engine holds heap structures); see load_index/_thaw_if_frozen.
        self._frozen_bundle = None
        self._last_load_info: dict | None = None
        # The KG version the engine's derived caches (query-embedding
        # LRU, segment cache) were populated under; a mismatch flushes
        # them (see _sync_graph_version).
        self._graph_version_seen = graph.version
        self._obs.bind(self)

    def _rebuild_scorers(self) -> None:
        """(Re)create the scoring stack over the current indexes.

        Shared by construction, :meth:`load_index` and
        :meth:`set_corpus_stats` — anything that swaps the indexes or
        their statistics must rebuild the scorers, the fused ranker, the
        planner and the snippet generator together so they never mix
        state from two index generations.
        """
        text_stats, node_stats = self._corpus_stats or (None, None)
        self._text_scorer = Bm25Scorer(
            self._text_index, self._config.bm25, stats=text_stats
        )
        self._node_scorer = Bm25Scorer(
            self._node_index, self._config.bm25, stats=node_stats
        )
        self._fused_ranker = FusedRanker(
            self._text_scorer,
            self._node_scorer,
            backend=self._config.pruned_backend,
        )
        self._planner = QueryPlanner(self._fused_ranker)
        self._snippet_generator = None

    def set_corpus_stats(self, text_stats, node_stats) -> None:
        """Score this engine's indexes with corpus-wide BM25 statistics.

        ``text_stats`` / ``node_stats`` are
        :class:`repro.search.bm25.CorpusStats` records (or None to drop
        back to index-local statistics).  This is the seam the shard
        planner (:mod:`repro.serving.planner`) uses: a shard engine
        holds one partition of the corpus but must score it with the
        *whole* corpus's document count, document frequencies and
        average length so its per-document scores — and therefore the
        coordinator's merged top-k — are bit-identical to a single
        whole-corpus engine.  Survives :meth:`load_index`.
        """
        self._corpus_stats = (
            None if text_stats is None and node_stats is None
            else (text_stats, node_stats)
        )
        self._rebuild_scorers()

    def precompile(self) -> None:
        """Eagerly build every lazily-compiled, shareable structure.

        Called once in the parent before forking shard workers (the same
        trick the parallel indexer uses for the CSR graph snapshot): the
        compiled graph, both packed posting snapshots, the BM25 norm
        caches and the per-term IDF caches are materialized now, so
        forked children share the frozen pages copy-on-write instead of
        each paying the compile — and then holding a private duplicate.
        """
        self._graph.compiled()
        if self._config.pruned_backend == "compiled":
            self._text_index.compiled()
            self._node_index.compiled()
        for scorer, index in (
            (self._text_scorer, self._text_index),
            (self._node_scorer, self._node_index),
        ):
            scorer.norms()
            for term in index.vocabulary():
                scorer.idf(term)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> KnowledgeGraph:
        """The knowledge graph documents are embedded into."""
        return self._graph

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def label_index(self) -> LabelIndex:
        """The exact-match label index (``S(l)``)."""
        return self._label_index

    @property
    def pipeline(self) -> NlpPipeline:
        """The NLP component."""
        return self._pipeline

    @property
    def embedder(self) -> SegmentEmbedder:
        """The NE component's segment embedder (full decorator stack)."""
        return self._embedder

    @property
    def analyzer(self) -> Analyzer:
        """The text analyzer both channels' query terms come from."""
        return self._analyzer

    @property
    def text_index(self) -> InvertedIndex:
        """The text-term (BOW channel) inverted index."""
        return self._text_index

    @property
    def node_index(self) -> InvertedIndex:
        """The embedding-node (BON channel) inverted index."""
        return self._node_index

    def indexed_doc_ids(self) -> list[str]:
        """Ids of every indexed document, in insertion order."""
        return list(self._embeddings)

    @property
    def is_frozen(self) -> bool:
        """True while the engine serves from mmap-backed frozen stores."""
        return self._frozen_bundle is not None

    @property
    def last_load_info(self) -> dict | None:
        """Details of the most recent :meth:`load_index` (None before one).

        Keys: ``path``, ``version``, ``mode`` (``"mmap"``/``"heap"``),
        ``bytes``, ``load_seconds``, ``mmap_requested``, ``fallback``
        (None, or the reason mmap was refused).  Surfaced on ``/stats``.
        """
        return self._last_load_info

    @property
    def search_stats(self) -> SearchStats:
        """Aggregate ``G*`` counters across every embed this engine ran.

        Parallel indexing merges the per-worker counters in here, so the
        numbers read the same whether indexing forked or not.
        """
        return self._search_stats

    @property
    def cache_stats(self) -> "CacheStats | None":
        """Segment-cache counters, or None when caching is disabled.

        After a parallel ``index_corpus`` the planner's exact dedup is
        accounted here (duplicates as hits), matching what a perfectly
        sized LRU would have reported on the serial path.
        """
        from repro.core.cache import CachingEmbedder

        if isinstance(self._embedder, CachingEmbedder):
            return self._embedder.stats
        return None

    @property
    def query_stats(self) -> QueryStats:
        """Aggregate query-serving counters across every ranked query.

        Tracks which path served each query (pruned vs exhaustive
        fallback), how many candidate documents were scored vs pruned,
        and how much posting-list work the cursors did — the query-side
        counterpart of :attr:`search_stats`.  ``matching_docs`` is only
        counted on the exhaustive path: not enumerating that set is
        precisely what the pruned path saves.
        """
        return self._query_stats

    @property
    def last_index_report(self) -> "IndexReport | None":
        """Observability record of the most recent parallel-path
        ``index_corpus`` run (None before one happens)."""
        return self._last_index_report

    @property
    def observability(self) -> EngineInstruments:
        """The engine's metric handles + tracer (see :mod:`repro.obs`)."""
        return self._obs

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The registry this engine publishes into."""
        return self._obs.registry

    @property
    def num_indexed(self) -> int:
        """Number of indexed documents."""
        return self._text_index.num_docs

    def embedding(self, doc_id: str) -> DocumentEmbedding:
        """The stored subgraph embedding of ``doc_id``."""
        embedding = self._embeddings.get(doc_id)
        if embedding is None:
            raise DocumentNotIndexedError(doc_id)
        return embedding

    def has_embedding(self, doc_id: str) -> bool:
        """True when ``doc_id`` was indexed with a non-empty embedding."""
        return doc_id in self._embeddings

    def _sync_graph_version(self) -> None:
        """Flush KG-derived caches when the graph has been mutated.

        The query-embedding LRU and the segment-embedding cache both
        hold ``G*`` results computed against a specific graph state; the
        graph's monotonic ``version`` counter detects mutation, and a
        mismatch flushes them so no stale embedding is ever served.
        (Stored *document* embeddings are intentionally untouched:
        re-embedding an indexed corpus is an explicit re-index, not a
        cache concern — see ``docs/observability.md``.)
        """
        version = self._graph.version
        if version == self._graph_version_seen:
            return
        self._graph_version_seen = version
        obs = self._obs
        if self._query_cache:
            self._query_cache.clear()
            if obs.enabled:
                obs.cache_invalidations.inc(cache="query")
        from repro.core.cache import CachingEmbedder

        target = self._embedder
        seen: set[int] = set()
        while target is not None and id(target) not in seen:
            seen.add(id(target))
            if isinstance(target, CachingEmbedder) and target.size:
                target.clear()
                if obs.enabled:
                    obs.cache_invalidations.inc(cache="segment")
            target = getattr(target, "inner", None)

    # ------------------------------------------------------------------
    # index building (§VI)
    # ------------------------------------------------------------------
    def index_document(
        self,
        document: NewsDocument,
        timing: TimingBreakdown | None = None,
    ) -> bool:
        """Process, embed and index one document.

        Returns False (and indexes nothing) when no subgraph embedding can
        be found — the paper filters such documents from the corpus
        (§VII-A2).
        """
        self._sync_graph_version()
        timing = timing or TimingBreakdown()
        obs = self._obs
        with timing.measure("nlp"):
            processed = self._pipeline.process(document.text, document.doc_id)
        with timing.measure("ne"):
            if faults.ACTIVE:
                faults.fire("engine.embed_document")
            embed_start = time.perf_counter() if obs.enabled else 0.0
            embedding = embed_document(processed, self._embedder)
            if obs.enabled:
                obs.embed_seconds.observe(time.perf_counter() - embed_start)
        if embedding.is_empty:
            return False
        with timing.measure("ns"):
            return self.add_embedded_document(
                document.doc_id, document.text, embedding
            )

    def add_embedded_document(
        self, doc_id: str, text: str, embedding: DocumentEmbedding
    ) -> bool:
        """Index a document whose embedding was computed elsewhere.

        This is the NS ingest step on its own: both inverted indexes are
        fed and the embedding/text stored.  Returns False (indexing
        nothing) when the embedding is empty.  Used by the parallel merge
        stage and by deployments that precompute embeddings offline.
        """
        if embedding.is_empty:
            return False
        self._thaw_if_frozen()
        self._text_index.add_document(doc_id, self._analyzer.analyze(text))
        self._node_index.add_document(doc_id, bon_terms(embedding))
        self._embeddings[doc_id] = embedding
        self._texts[doc_id] = text
        return True

    def index_corpus(
        self,
        corpus: Corpus,
        timing: TimingBreakdown | None = None,
        workers: int | None = None,
    ) -> list[str]:
        """Index every document of ``corpus``; returns skipped doc ids.

        ``workers`` (default: ``EngineConfig.workers``) selects the path:
        1 runs the serial reference loop; 0 or >1 runs the dedup-planned
        parallel pipeline (:mod:`repro.parallel`), which produces
        bit-identical indexes while embedding each unique entity group
        exactly once and fanning the ``G*`` searches across processes.
        """
        resolved = self._config.workers if workers is None else workers
        if resolved == 0:
            resolved = os.cpu_count() or 1
        if resolved > 1:
            from repro.parallel import index_corpus_parallel

            report = index_corpus_parallel(
                self, corpus, timing=timing, workers=resolved
            )
            self._last_index_report = report
            return report.skipped
        skipped = []
        for document in corpus:
            if not self.index_document(document, timing=timing):
                skipped.append(document.doc_id)
        return skipped

    # ------------------------------------------------------------------
    # query processing (§VI)
    # ------------------------------------------------------------------
    def process_query(
        self,
        text: str,
        timing: TimingBreakdown | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[ProcessedDocument, DocumentEmbedding]:
        """Run the NLP and NE stages on a query text.

        ``deadline`` bounds the NE stage: expiry — checked before the
        embedding starts, between entity groups, and inside the ``G*``
        search loops — raises
        :class:`~repro.errors.DeadlineExpiredError`.
        """
        self._sync_graph_version()
        timing = timing or TimingBreakdown()
        with timing.measure("nlp"):
            processed = self._pipeline.process(text, "__query__")
        with timing.measure("ne"):
            if faults.ACTIVE:
                faults.fire("engine.embed_query")
            if deadline is not None and deadline.expired():
                raise DeadlineExpiredError(
                    "query embedding abandoned: deadline expired before "
                    "the NE stage"
                )
            embedding = embed_document(
                processed, self._embedder, deadline=deadline
            )
        return processed, embedding

    def _resolve_context(
        self,
        profile: "UserProfile | None",
        session: "Session | None",
        gamma: float | None,
    ) -> _QueryContext | None:
        """Fold profile/session into a :class:`_QueryContext` (or None).

        ``gamma`` defaults to the configured ``fusion.gamma``.  Returns
        None — the anonymous context, bit-identical to two-channel
        ranking — when no state is supplied, the effective gamma is 0,
        or the supplied state contributes no terms (e.g. a profile with
        no clicks yet).
        """
        if gamma is None:
            gamma = self._config.fusion.gamma
        elif not 0.0 <= gamma <= 1.0:
            raise DataError(f"gamma must lie in [0, 1], got {gamma!r}")
        if gamma <= 0.0 or (profile is None and session is None):
            return None
        key: list[tuple[str, str, int]] = []
        terms: list[str] = []
        if profile is not None:
            key.append(("p", profile.profile_id, profile.revision))
            terms.extend(profile.bon_terms())
        if session is not None:
            key.append(("s", session.session_id, session.revision))
            terms.extend(session.bon_terms())
        if not terms:
            return None
        return _QueryContext(tuple(key), tuple(terms), gamma)

    def query_state(
        self,
        text: str,
        timing: TimingBreakdown | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[ProcessedDocument, DocumentEmbedding]:
        """Public alias of :meth:`_query_state` (same LRU, same deadline
        contract).  The scatter-gather coordinator runs the NLP and NE
        stages exactly once per logical query through here and ships only
        the resulting term lists to the shards."""
        return self._query_state(text, timing=timing, deadline=deadline)

    def contextual_query_state(
        self,
        text: str,
        profile: "UserProfile | None" = None,
        session: "Session | None" = None,
        gamma: float | None = None,
        timing: TimingBreakdown | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[ProcessedDocument, DocumentEmbedding, tuple[str, ...], float]:
        """:meth:`query_state` plus the resolved context channel.

        Returns ``(processed, embedding, context_terms, gamma)`` where
        ``context_terms``/``gamma`` are ``()``/``0.0`` for anonymous
        queries.  This is what the scatter-gather coordinator calls on
        its document-free frontend: the context terms ship to the shards
        alongside the query term lists, so shard workers stay stateless.
        """
        context = self._resolve_context(profile, session, gamma)
        processed, embedding, ctx_terms = self._cached_query_state(
            text, timing, deadline, context
        )
        return (
            processed,
            embedding,
            ctx_terms,
            context.gamma if context is not None else 0.0,
        )

    def _query_state(
        self,
        text: str,
        timing: TimingBreakdown | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[ProcessedDocument, DocumentEmbedding]:
        """Anonymous :meth:`_cached_query_state` (the common case)."""
        processed, embedding, _ = self._cached_query_state(
            text, timing, deadline, None
        )
        return processed, embedding

    def _cached_query_state(
        self,
        text: str,
        timing: TimingBreakdown | None,
        deadline: Deadline | None,
        context: _QueryContext | None,
    ) -> tuple[ProcessedDocument, DocumentEmbedding, tuple[str, ...]]:
        """:meth:`process_query` behind a small LRU.

        Queries depend only on the pipeline and graph — never on the
        index contents — so entries are invalidated exactly when the
        graph mutates (:meth:`_sync_graph_version` flushes the LRU on a
        ``KnowledgeGraph.version`` change).  ``search`` followed by k
        ``explain*`` calls for the same query costs one embedding.  On a
        hit, zero-duration nlp/ne entries keep timing breakdowns shaped
        the same as on a miss.

        **Cache-key contract:** entries are keyed on
        ``(text, graph_version, context_key, gamma)`` — never on text
        alone.  The cached value includes the context terms the ranking
        consumes, so a personalized entry served for an anonymous query
        (or vice versa, or across profile/session revisions) would leak
        one user's ranking state into another's results; the full key
        makes such cross-contamination structurally impossible.  The
        graph version is part of the key as defense in depth even though
        a version change also flushes the LRU wholesale.  Capacity
        evictions are counted under
        ``newslink_cache_invalidations_total{cache="query"}``.
        Regression-tested in ``tests/search/test_stale_cache.py``.

        **Deadline contract:** a cache hit deliberately never consults
        ``deadline``.  The budget exists to bound the *expensive* NE
        stage; the cached path costs one dict lookup, so serving full
        (non-degraded) results is strictly better than degrading — even
        when the deadline is already expired on entry.  Tested in
        ``tests/search/test_deadline_cache_contract.py``.
        """
        self._sync_graph_version()
        obs = self._obs
        limit = self._config.query_cache_size
        if context is None:
            key = (text, self._graph_version_seen, None, 0.0)
        else:
            key = (text, self._graph_version_seen, context.key, context.gamma)
        if limit:
            state = self._query_cache.get(key)
            if state is not None:
                self._query_cache.move_to_end(key)
                if timing is not None:
                    timing.add("nlp", 0.0)
                    timing.add("ne", 0.0)
                if obs.enabled:
                    obs.query_cache_lookups.inc(result="hit")
                    span = obs.tracer.current
                    if span is not None:
                        span.annotate("query_cache", "hit")
                return state
        if obs.enabled and limit:
            obs.query_cache_lookups.inc(result="miss")
            span = obs.tracer.current
            if span is not None:
                span.annotate("query_cache", "miss")
        if deadline is None:
            processed, embedding = self.process_query(text, timing=timing)
        else:
            processed, embedding = self.process_query(
                text, timing=timing, deadline=deadline
            )
        state = (
            processed,
            embedding,
            context.terms if context is not None else (),
        )
        if limit:
            self._query_cache[key] = state
            if len(self._query_cache) > limit:
                self._query_cache.popitem(last=False)
                if obs.enabled:
                    obs.cache_invalidations.inc(cache="query")
        return state

    def search(
        self,
        text: str,
        k: int = 10,
        timing: TimingBreakdown | None = None,
        beta: float | None = None,
        ranking: str | None = None,
        deadline_ms: float | None = None,
        profile: "UserProfile | None" = None,
        session: "Session | None" = None,
        gamma: float | None = None,
        advance_session: bool = False,
    ) -> list[SearchResult]:
        """Top-``k`` search with Equation 3 fusion.

        ``beta`` overrides the configured fusion weight for this query,
        which lets the Table VII sweep reuse one indexed engine;
        ``ranking`` likewise overrides :attr:`EngineConfig.ranking`
        (``"pruned"`` / ``"exhaustive"``) per query, which is how the
        differential tests and the latency benchmark compare both paths
        on a single index.

        ``profile`` / ``session`` supply personalization context
        (:mod:`repro.personalize`): their subgraph nodes are blended as
        Equation 3's third channel, weighted by ``gamma`` (default
        ``fusion.gamma``).  With ``gamma=0`` or no context the result is
        bit-identical to the anonymous two-channel ranking.
        ``advance_session=True`` additionally folds this query's
        embedding into ``session`` after ranking (conversational
        re-anchoring) — skipped when the query degrades, since no
        embedding was computed.

        ``deadline_ms`` bounds the whole query (overriding
        :attr:`EngineConfig.deadline_ms` for this call).  When the
        budget expires during query embedding the engine degrades
        instead of failing: the embedding is abandoned, ranking falls
        back to the text (BOW) channel alone, and every returned result
        carries ``degraded=True`` plus the reason.  An expired deadline
        never raises out of this method.  A query-embedding cache hit
        intentionally bypasses the deadline check entirely — the cached
        path is cheap, so an already-expired budget still returns full
        non-degraded results (see :meth:`_query_state`).

        When metrics are enabled the whole call runs under a ``query``
        span (stages nlp/ne/ns, cache and serving-path attributes) and
        publishes per-stage latency histograms; when disabled the cost
        is a single branch.
        """
        timing = timing or TimingBreakdown()
        obs = self._obs
        if not obs.enabled:
            return self._search_impl(
                text, k, timing, beta, ranking, deadline_ms,
                profile, session, gamma, advance_session,
            )
        stage_totals_before = dict(timing.totals)
        start = time.perf_counter()
        with obs.tracer.span("query", query=text, k=k) as span:
            previous_span = timing.span
            if span:
                timing.span = span
            try:
                results = self._search_impl(
                    text, k, timing, beta, ranking, deadline_ms,
                    profile, session, gamma, advance_session,
                )
            finally:
                timing.span = previous_span
            if span:
                span.annotate("results", len(results))
                if results and results[0].degraded:
                    span.annotate("degraded_reason", results[0].degraded_reason)
        duration = time.perf_counter() - start
        obs.query_latency.observe(duration, stage="total")
        for component in ("nlp", "ne", "ns"):
            delta = timing.totals.get(component, 0.0) - stage_totals_before.get(
                component, 0.0
            )
            obs.query_latency.observe(delta, stage=component)
        return results

    def _search_impl(
        self,
        text: str,
        k: int,
        timing: TimingBreakdown,
        beta: float | None,
        ranking: str | None,
        deadline_ms: float | None,
        profile: "UserProfile | None" = None,
        session: "Session | None" = None,
        gamma: float | None = None,
        advance_session: bool = False,
    ) -> list[SearchResult]:
        """The uninstrumented serving path (see :meth:`search`)."""
        context = self._resolve_context(profile, session, gamma)
        ctx_gamma = context.gamma if context is not None else None
        budget = self._config.deadline_ms if deadline_ms is None else deadline_ms
        if budget is None:
            _, query_embedding, ctx_terms = self._cached_query_state(
                text, timing, None, context
            )
        else:
            deadline = Deadline(budget)
            try:
                _, query_embedding, ctx_terms = self._cached_query_state(
                    text, timing, deadline, context
                )
            except DeadlineExpiredError as exc:
                # Degradation drops the context channel along with BON:
                # both need the embedding work the deadline just denied.
                return self._search_degraded(text, k, timing, ranking, str(exc))
        with timing.measure("ns"):
            results = self._rank(
                text,
                query_embedding,
                k,
                beta,
                ranking,
                profile_terms=ctx_terms,
                gamma=ctx_gamma,
            )
        if advance_session and session is not None:
            session.advance(text, query_embedding)
        return results

    def _search_degraded(
        self,
        text: str,
        k: int,
        timing: TimingBreakdown,
        ranking: str | None,
        reason: str,
    ) -> list[SearchResult]:
        """Deadline fallback: rank on the text channel only, flag results.

        The node channel needs the query embedding that just timed out,
        so fusion runs with ``beta=0.0`` (pure BOW) regardless of the
        configured weight — degraded results always come from the cheap
        channel.  Degradations are counted in :attr:`query_stats`.
        """
        empty = DocumentEmbedding(doc_id="__query__", graphs=(), node_counts={})
        with timing.measure("ns"):
            results = self._rank(text, empty, k, 0.0, ranking)
        self._query_stats.merge(QueryStats(degraded_queries=1))
        self._annotate_path("degraded")
        return [
            replace(result, degraded=True, degraded_reason=reason)
            for result in results
        ]

    def _annotate_path(self, path: str) -> None:
        """Tag the active query span with the serving path taken."""
        obs = self._obs
        if obs.enabled:
            span = obs.tracer.current
            if span is not None:
                span.annotate("path", path)

    def search_with_embedding(
        self,
        text: str,
        query_embedding: DocumentEmbedding,
        k: int = 10,
        beta: float | None = None,
        ranking: str | None = None,
    ) -> list[SearchResult]:
        """Rank with a precomputed query embedding (used by benchmarks)."""
        return self._rank(text, query_embedding, k, beta, ranking)

    def _rank(
        self,
        text: str,
        query_embedding: DocumentEmbedding,
        k: int,
        beta: float | None = None,
        ranking: str | None = None,
        profile_terms: Sequence[str] = (),
        gamma: float | None = None,
    ) -> list[SearchResult]:
        fusion = self._config.fusion
        if beta is not None and beta != fusion.beta:
            fusion = replace(fusion, beta=beta)
        beta = fusion.beta
        bow_query = self._analyzer.analyze(text) if beta < 1.0 else []
        bon_query = (
            bon_terms(query_embedding)
            if beta > 0.0 and not query_embedding.is_empty
            else []
        )
        return self.rank_terms(
            bow_query,
            bon_query,
            k,
            beta=beta,
            ranking=ranking,
            profile_terms=profile_terms,
            gamma=gamma,
        )

    def rank_terms(
        self,
        bow_query: Sequence[str],
        bon_query: Sequence[str],
        k: int,
        beta: float | None = None,
        ranking: str | None = None,
        profile_terms: Sequence[str] | None = None,
        gamma: float | None = None,
    ) -> list[SearchResult]:
        """Rank from already-analyzed query terms (the NS stage alone).

        ``bow_query`` are analyzed text terms, ``bon_query`` the node
        terms of the query's subgraph embedding (``bon_terms``);
        ``profile_terms`` are optional personalization/session context
        nodes weighted by ``gamma``.  This is the entry point shard
        workers serve: the coordinator runs the NLP and NE stages once
        and scatters the term lists (context included — shards hold no
        per-user state), so every shard ranks without re-embedding the
        query.  Produces exactly what :meth:`search` produces for the
        same terms — the planner, pruned and exhaustive paths all flow
        through here.
        """
        fusion = self._config.fusion
        if beta is not None and beta != fusion.beta:
            fusion = replace(fusion, beta=beta)
        if gamma is not None:
            if not 0.0 <= gamma <= 1.0:
                raise DataError(f"gamma must lie in [0, 1], got {gamma!r}")
            if gamma != fusion.gamma:
                fusion = replace(fusion, gamma=gamma)
        beta = fusion.beta
        if ranking is None:
            ranking = self._config.ranking
        elif ranking not in ("auto", "pruned", "exhaustive"):
            raise DataError(
                f"ranking must be 'auto', 'pruned' or 'exhaustive', got {ranking!r}"
            )
        bow_query = list(bow_query) if beta < 1.0 else []
        bon_query = list(bon_query) if beta > 0.0 else []
        profile_query = (
            list(profile_terms)
            if profile_terms and fusion.gamma > 0.0
            else []
        )
        if profile_query:
            self._query_stats.merge(QueryStats(personalized_queries=1))
            self._annotate_path_attr("personalized", len(profile_query))
        if ranking != "exhaustive" and supports_pruned_ranking(fusion):
            if ranking == "auto":
                decision = self._planner.plan(
                    bow_query, bon_query, k, fusion, profile_terms=profile_query
                )
                self._query_stats.merge(
                    QueryStats(
                        planner_pruned=int(decision.path == "pruned"),
                        planner_exhaustive=int(decision.path == "exhaustive"),
                    )
                )
                self._annotate_planner(decision)
                if decision.path == "exhaustive":
                    return self._rank_exhaustive(
                        bow_query, bon_query, profile_query, k, fusion
                    )
            return self._rank_pruned(
                bow_query, bon_query, profile_query, k, fusion
            )
        return self._rank_exhaustive(
            bow_query, bon_query, profile_query, k, fusion
        )

    def _annotate_path_attr(self, name: str, value) -> None:
        """Tag the active query span with an arbitrary attribute."""
        obs = self._obs
        if obs.enabled:
            span = obs.tracer.current
            if span is not None:
                span.annotate(name, value)

    def _annotate_planner(self, decision) -> None:
        """Tag the active query span with the planner's cost estimate."""
        obs = self._obs
        if obs.enabled:
            span = obs.tracer.current
            if span is not None:
                span.annotate("planner", decision.as_dict())

    def _rank_pruned(
        self,
        bow_query: list[str],
        bon_query: list[str],
        profile_query: list[str],
        k: int,
        fusion,
    ) -> list[SearchResult]:
        """The dynamic-pruning fast path (identical results, less work)."""
        hits, stats = self._fused_ranker.top_k(
            bow_query, bon_query, k, fusion, profile_terms=profile_query
        )
        self._query_stats.merge(stats)
        self._annotate_path("pruned")
        return [
            SearchResult(
                doc_id=hit.doc_id,
                score=hit.score,
                bow_score=hit.bow_score,
                bon_score=hit.bon_score,
                profile_score=hit.profile_score,
            )
            for hit in hits
        ]

    def _rank_exhaustive(
        self,
        bow_query: list[str],
        bon_query: list[str],
        profile_query: list[str],
        k: int,
        fusion,
    ) -> list[SearchResult]:
        """The reference path: full score maps on both channels, then fuse.

        Required whenever the complete fused map is needed — per-query
        max-normalization (``fusion.normalize``) or callers that want
        every matching document's score.  The term lists arrive already
        gated by beta/gamma (:meth:`rank_terms` empties unused channels).
        """
        beta = fusion.beta
        bow_scores: dict[str, float] = {}
        bon_scores: dict[str, float] = {}
        profile_scores: dict[str, float] = {}
        if beta < 1.0:
            bow_scores = self._text_scorer.score(bow_query)
        if beta > 0.0 and bon_query:
            bon_scores = self._node_scorer.score(bon_query)
        if fusion.gamma > 0.0 and profile_query:
            profile_scores = self._node_scorer.score(profile_query)
        fused = fuse_scores(
            bow_scores, bon_scores, fusion, profile_scores=profile_scores
        )
        ranked = top_k(fused, k)
        self._query_stats.merge(
            QueryStats(
                queries=1,
                fallback_queries=1,
                matching_docs=len(fused),
                candidates_examined=len(fused),
            )
        )
        self._annotate_path("exhaustive")
        return [
            SearchResult(
                doc_id=doc_id,
                score=score,
                bow_score=bow_scores.get(doc_id, 0.0),
                bon_score=bon_scores.get(doc_id, 0.0),
                profile_score=profile_scores.get(doc_id, 0.0),
            )
            for doc_id, score in ranked
        ]

    # ------------------------------------------------------------------
    # maintenance & persistence
    # ------------------------------------------------------------------
    def remove_document(self, doc_id: str) -> None:
        """Remove an indexed document from both indexes."""
        if doc_id not in self._embeddings:
            raise DocumentNotIndexedError(doc_id)
        self._thaw_if_frozen()
        self._text_index.remove_document(doc_id)
        self._node_index.remove_document(doc_id)
        del self._embeddings[doc_id]
        self._texts.pop(doc_id, None)

    def document_text(self, doc_id: str) -> str:
        """The stored raw text of an indexed document."""
        text = self._texts.get(doc_id)
        if text is None:
            raise DocumentNotIndexedError(doc_id)
        return text

    def snippet(self, query_text: str, doc_id: str) -> "Snippet":
        """A query-biased, highlighted snippet of an indexed document."""
        if self._snippet_generator is None:
            from repro.search.snippets import SnippetGenerator

            self._snippet_generator = SnippetGenerator(
                self._analyzer, self._text_scorer
            )
        return self._snippet_generator.generate(
            self.document_text(doc_id), query_text
        )

    def save_index(self, path: "str | Path", format: str | None = None) -> None:
        """Persist both inverted indexes and all document embeddings.

        Embedding a corpus dominates indexing cost (Fig 7); saving lets a
        deployment reload in seconds.  The knowledge graph itself is not
        stored — load with the same graph (persist it separately with
        :func:`repro.kg.io.save_graph_json`).

        ``format`` selects the on-disk layout (default:
        :attr:`EngineConfig.index_format`).  ``"v3"`` writes the
        zero-copy binary container — delta-encoded packed postings,
        embedding/text arenas, per-section CRC32s — that
        :meth:`load_index` can mmap directly
        (:mod:`repro.search.storage`); ``"v2"`` streams the JSON format
        one embedding at a time.  Both are deterministic: saving the
        same state twice produces byte-identical files.  A path ending
        in ``.gz`` is gzipped transparently with a zeroed timestamp.

        The write is crash-safe regardless of format: the payload goes
        to a temporary file in the same directory, is fsynced, and is
        atomically renamed over ``path`` — a crash at any point leaves
        the previous index byte-identical and loadable, never a
        half-written file under the final name.
        """
        path = Path(path)
        resolved = format or self._config.index_format
        if resolved not in ("v2", "v3"):
            raise DataError(
                f"index format must be 'v2' or 'v3', got {resolved!r}"
            )
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as raw:
                if faults.ACTIVE:
                    faults.fire("persist.write")
                if resolved == "v3":
                    payload = self._container_bytes()
                    if path.suffix == ".gz":
                        with gzip.GzipFile(
                            filename="", mode="wb", fileobj=raw, mtime=0
                        ) as binary:
                            binary.write(payload)
                    else:
                        raw.write(payload)
                elif path.suffix == ".gz":
                    with gzip.GzipFile(
                        filename="", mode="wb", fileobj=raw, mtime=0
                    ) as binary, io.TextIOWrapper(
                        binary, encoding="utf-8"
                    ) as fh:
                        self._write_index(fh)
                else:
                    fh = io.TextIOWrapper(raw, encoding="utf-8")
                    self._write_index(fh)
                    fh.flush()
                    fh.detach()
                raw.flush()
                os.fsync(raw.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self._fsync_directory(path.parent)

    def _container_bytes(self) -> bytes:
        """The engine's persistence state as v3 container bytes."""
        from repro.search.storage import build_index_container

        return build_index_container(
            self._text_index,
            self._node_index,
            self._embeddings,
            self._texts,
            list(self._embeddings),
        )

    @staticmethod
    def _fsync_directory(directory: Path) -> None:
        """Make the rename durable (best-effort on platforms without
        directory fds)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform dependent
            pass
        finally:
            os.close(fd)

    def _write_index(self, fh) -> None:
        """Stream the index payload as JSON, then a checksum trailer.

        The payload is a single JSON document with no raw newlines; the
        trailer is one final newline-prefixed line recording the CRC32
        of the payload's UTF-8 bytes, so :meth:`load_index` can split
        payload from trailer with a single ``rpartition``.
        """
        from repro.core.serialization import embedding_to_dict

        writer = _Crc32Writer(fh)
        # "sorted_docs" marks both forward maps as written in ascending
        # doc-id order, so load_index can seed the per-term sorted
        # posting lists (and from them the compiled snapshot) without
        # ever re-sorting — see InvertedIndex.load_documents_sorted.
        writer.write(
            '{"format": "newslink-index", "version": 2, '
            '"sorted_docs": true, "text_index": '
        )
        json.dump(self._sorted_forward_map(self._text_index), writer)
        writer.write(', "node_index": ')
        json.dump(self._sorted_forward_map(self._node_index), writer)
        writer.write(', "texts": ')
        # A frozen (mmap-backed) engine stores texts in a packed arena;
        # materialize a plain dict (insertion order preserved) for JSON.
        texts = (
            self._texts
            if isinstance(self._texts, dict)
            else dict(self._texts)
        )
        json.dump(texts, writer)
        writer.write(', "embeddings": [')
        for position, embedding in enumerate(self._embeddings.values()):
            if position:
                writer.write(", ")
            json.dump(embedding_to_dict(embedding), writer)
        writer.write("]}")
        fh.write(
            "\n" + json.dumps(
                {"trailer": "newslink-crc32", "crc32": writer.crc}
            )
        )

    @staticmethod
    def _sorted_forward_map(index: InvertedIndex) -> dict[str, dict[str, int]]:
        """The index's forward map, doc ids and per-doc terms ascending.

        Sorting both levels makes the v2 payload canonical: the bytes
        depend only on the logical index contents, so a heap engine and
        a frozen (v3-loaded) engine holding the same documents save
        byte-identical v2 files.
        """
        forward = index.to_forward_map()
        return {
            doc_id: dict(sorted(forward[doc_id].items()))
            for doc_id in sorted(forward)
        }

    def load_index(self, path: "str | Path", mmap: bool | None = None) -> int:
        """Load an index written by :meth:`save_index`; returns doc count.

        Existing index contents are replaced.  The format is detected by
        magic bytes — v3 binary containers, gzip archives (of either
        format) and legacy v1/v2 JSON all load back regardless of
        suffix.

        ``mmap`` (default: :attr:`EngineConfig.mmap`) selects the v3
        load mode.  True maps the file with ``mmap.mmap`` and installs
        zero-copy frozen stores — no per-posting Python objects are
        built; terms decode lazily on first query touch, and forked
        shard workers share the mapped pages copy-on-write.  False (or
        any non-v3 file) hydrates heap structures.  A gzip archive
        cannot be mapped: with ``mmap=True`` it falls back to the heap
        loader with a logged warning, counted by
        ``newslink_index_load_fallback_total{reason="gzip"}`` (legacy
        JSON files are likewise counted under ``reason="legacy_format"``).

        The load is transactional either way: every CRC (the v2 trailer,
        or all v3 section checksums) is verified and fresh structures
        built *before* any engine state is touched, so a corrupt file
        (raising :class:`~repro.errors.IndexCorruptError` naming the
        failing section) leaves the live index fully intact.  Version-1
        files (no trailer) still load, without checksum verification.
        """
        from repro.search import storage

        path = Path(path)
        if faults.ACTIVE:
            faults.fire("persist.load")
        use_mmap = self._config.mmap if mmap is None else mmap
        started = time.perf_counter()
        fallback: str | None = None
        mode = "heap"
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as probe:
                head = probe.read(len(storage.MAGIC))
        except FileNotFoundError:
            raise
        except OSError as exc:
            raise IndexCorruptError(path, f"unreadable: {exc}") from exc
        if head == storage.MAGIC:
            version = 3
            if use_mmap:
                with open(path, "rb") as fh:
                    mapped = mmap_module.mmap(
                        fh.fileno(), 0, access=mmap_module.ACCESS_READ
                    )
                try:
                    bundle = storage.FrozenIndexBundle(path, mapped, mapped)
                except BaseException:
                    try:
                        mapped.close()
                    except BufferError:
                        # Traceback frames still export memoryviews over
                        # the map; it closes when the exception is
                        # collected.
                        pass
                    raise
                self._install_frozen_bundle(bundle)
                mode = "mmap"
            else:
                bundle = storage.FrozenIndexBundle(path, path.read_bytes())
                self._install_heap_from_bundle(path, bundle)
        elif head[:2] == b"\x1f\x8b":
            try:
                with gzip.open(path, "rb") as fh:
                    data = fh.read()
            except (OSError, EOFError, ValueError, zlib.error) as exc:
                raise IndexCorruptError(
                    path, f"unreadable: {exc}"
                ) from exc
            if use_mmap:
                fallback = "gzip"
                _logger.warning(
                    "index %s is gzip-compressed and cannot be memory-"
                    "mapped; falling back to the heap loader "
                    "(save uncompressed v3 to enable mmap)",
                    path,
                )
            if data[: len(storage.MAGIC)] == storage.MAGIC:
                version = 3
                bundle = storage.FrozenIndexBundle(path, data)
                self._install_heap_from_bundle(path, bundle)
            else:
                try:
                    text = data.decode("utf-8")
                except ValueError as exc:
                    raise IndexCorruptError(
                        path, f"unreadable: {exc}"
                    ) from exc
                version = self._load_legacy(path, text)
        else:
            try:
                text = path.read_text(encoding="utf-8")
            except (OSError, ValueError) as exc:
                raise IndexCorruptError(path, f"unreadable: {exc}") from exc
            version = self._load_legacy(path, text)
            if use_mmap:
                fallback = "legacy_format"
        duration = time.perf_counter() - started
        self._last_load_info = {
            "path": str(path),
            "version": version,
            "mode": mode,
            "bytes": size,
            "load_seconds": duration,
            "mmap_requested": bool(use_mmap),
            "fallback": fallback,
        }
        obs = self._obs
        if obs.enabled:
            obs.index_load_seconds.set(duration, mode=mode)
            obs.index_bytes.set(float(size))
            if fallback is not None:
                obs.index_load_fallbacks.inc(reason=fallback)
        return self.num_indexed

    def _install_frozen_bundle(self, bundle) -> None:
        """Swap the engine onto a validated frozen (mmap-backed) bundle."""
        self._text_index = bundle.text_index
        self._node_index = bundle.node_index
        self._embeddings = bundle.embeddings
        self._texts = bundle.texts
        self._frozen_bundle = bundle
        self._rebuild_scorers()

    def _heap_state_from_bundle(self, path, bundle):
        """Hydrate heap structures from a v3 bundle (transactionally)."""
        try:
            text_index = InvertedIndex()
            text_index.load_documents_sorted(
                bundle.text_index.to_forward_map().items()
            )
            node_index = InvertedIndex()
            node_index.load_documents_sorted(
                bundle.node_index.to_forward_map().items()
            )
            embeddings = dict(bundle.embeddings)
            texts = dict(bundle.texts)
        except (DataError, KeyError, TypeError, ValueError) as exc:
            raise IndexCorruptError(
                path, f"malformed v3 payload: {exc!r}"
            ) from exc
        return text_index, node_index, embeddings, texts

    def _install_heap_from_bundle(self, path, bundle) -> None:
        text_index, node_index, embeddings, texts = (
            self._heap_state_from_bundle(path, bundle)
        )
        self._text_index = text_index
        self._node_index = node_index
        self._embeddings = embeddings
        self._texts = texts
        self._frozen_bundle = None
        self._rebuild_scorers()
        if self._config.pruned_backend == "compiled":
            self._text_index.compiled()
            self._node_index.compiled()

    def _thaw_if_frozen(self) -> None:
        """Convert frozen (mmap-backed) stores to mutable heap state.

        Mutation entry points call this first: the packed layout is
        immutable by design, so an add/remove on a frozen engine pays a
        one-time full hydration (decode every posting, embedding and
        text) and proceeds on ordinary heap structures — the mmap
        buffer is then released.  Searches before and after a thaw are
        bit-identical (tests/search/test_v3_format.py).
        """
        bundle = self._frozen_bundle
        if bundle is None:
            return
        self._install_heap_from_bundle("<frozen>", bundle)

    def _load_legacy(self, path: Path, text: str) -> int:
        """Parse + install a v1/v2 JSON index; returns the version."""
        from repro.core.serialization import embedding_from_dict

        payload_text, newline, trailer_text = text.rpartition("\n")
        if newline:
            # Version >= 2: the final line is the checksum trailer.
            try:
                trailer = json.loads(trailer_text)
                expected = trailer["crc32"]
            except (json.JSONDecodeError, TypeError, KeyError) as exc:
                raise IndexCorruptError(
                    path,
                    f"malformed checksum trailer: {trailer_text[:80]!r}",
                ) from exc
            actual = zlib.crc32(payload_text.encode("utf-8"))
            if actual != expected:
                raise IndexCorruptError(
                    path,
                    f"checksum mismatch: stored {expected!r}, "
                    f"computed {actual}",
                )
        else:
            # Version 1 wrote no trailer (and no newlines at all).
            payload_text = text
        try:
            payload = json.loads(payload_text)
        except json.JSONDecodeError as exc:
            raise IndexCorruptError(path, f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != (
            "newslink-index"
        ):
            raise IndexCorruptError(path, "not a NewsLink index file")
        version = payload.get("version")
        if version not in (1, 2):
            raise IndexCorruptError(
                path, f"unsupported index version {version!r}"
            )
        # Build into fresh structures first; the live engine is swapped
        # only after the whole file parsed and validated.
        text_index = InvertedIndex()
        node_index = InvertedIndex()
        embeddings: dict[str, DocumentEmbedding] = {}
        section = "texts"
        try:
            texts = {
                doc_id: str(doc_text)
                for doc_id, doc_text in payload.get("texts", {}).items()
            }
            sorted_docs = bool(payload.get("sorted_docs"))
            section = "text_index"
            if sorted_docs:
                # Fast path: documents were written in ascending doc-id
                # order, so posting lists ingest pre-sorted and the
                # compiled snapshot builds without any re-sorting.
                text_index.load_documents_sorted(
                    payload["text_index"].items()
                )
            else:
                for doc_id, counts in payload["text_index"].items():
                    text_index.add_document_counts(doc_id, counts)
            section = "node_index"
            if sorted_docs:
                node_index.load_documents_sorted(
                    payload["node_index"].items()
                )
            else:
                for doc_id, counts in payload["node_index"].items():
                    node_index.add_document_counts(doc_id, counts)
            section = "embeddings"
            for raw in payload["embeddings"]:
                embedding = embedding_from_dict(raw)
                embeddings[embedding.doc_id] = embedding
        except (DataError, KeyError, TypeError, ValueError, AttributeError) as exc:
            raise IndexCorruptError(
                path, f"invalid {section!r} section: {exc!r}"
            ) from exc
        self._text_index = text_index
        self._node_index = node_index
        self._rebuild_scorers()
        self._embeddings = embeddings
        self._texts = texts
        self._frozen_bundle = None
        if sorted_docs and self._config.pruned_backend == "compiled":
            # Eagerly rebuild the packed snapshots from the pre-sorted
            # posting lists so the first query after a load doesn't pay
            # the compile.
            self._text_index.compiled()
            self._node_index.compiled()
        return version

    # ------------------------------------------------------------------
    # explanations (Tables II & VI)
    # ------------------------------------------------------------------
    def explain(
        self,
        query_text: str,
        result_doc_id: str,
        max_paths: int = 10,
        query_embedding: DocumentEmbedding | None = None,
    ) -> list[RelationshipPath]:
        """Relationship paths linking the query to a retrieved document.

        ``query_embedding`` short-circuits the query NLP+NE stages when
        the caller already holds it; otherwise the query LRU shared with
        :meth:`search` makes explaining a just-searched query free.
        """
        if query_embedding is None:
            _, query_embedding = self._query_state(query_text)
        result_embedding = self.embedding(result_doc_id)
        return explain_pair(query_embedding, result_embedding, max_paths=max_paths)

    def explanation(
        self,
        query_text: str,
        result_doc_id: str,
        options: "ExplanationOptions | None" = None,
        query_embedding: DocumentEmbedding | None = None,
    ) -> "Explanation":
        """A presentable explanation (novelty-ranked, overload-budgeted).

        Implements the presentation improvements the paper's user-study
        feedback motivates (§VII-D); see :mod:`repro.core.presentation`.
        """
        from repro.core.presentation import ExplanationPresenter

        if query_embedding is None:
            _, query_embedding = self._query_state(query_text)
        result_embedding = self.embedding(result_doc_id)
        presenter = ExplanationPresenter(self._graph)
        return presenter.build(query_embedding, result_embedding, options)

    def explain_verbalized(
        self,
        query_text: str,
        result_doc_id: str,
        max_paths: int = 10,
        query_embedding: DocumentEmbedding | None = None,
    ) -> list[str]:
        """Human-readable rendering of :meth:`explain`.

        Entities mentioned in both the query and the result (the trivial
        keyword evidence, Table I's "matched entities") are listed first,
        followed by the relationship paths linking the *unmatched* ones.
        """
        if query_embedding is None:
            _, query_embedding = self._query_state(query_text)
        result_embedding = self.embedding(result_doc_id)
        shared = sorted(
            query_embedding.entity_nodes() & result_embedding.entity_nodes()
        )
        lines = [
            f"{self._graph.node(node_id).label} (mentioned by both)"
            for node_id in shared
        ]
        paths = explain_pair(query_embedding, result_embedding, max_paths=max_paths)
        lines.extend(verbalize_path(path, self._graph) for path in paths)
        return lines
