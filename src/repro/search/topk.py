"""Top-k selection over score maps."""

from __future__ import annotations

import heapq
from collections.abc import Mapping


def top_k(scores: Mapping[str, float], k: int) -> list[tuple[str, float]]:
    """The ``k`` highest-scoring ``(doc_id, score)`` pairs.

    Sorted by descending score; ties broken by ascending doc id so results
    are deterministic.
    """
    if k <= 0:
        return []
    # heapq.nsmallest on (-score, doc_id) gives descending score with
    # ascending id tie-break in O(n log k).
    pairs = heapq.nsmallest(k, scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(doc_id, score) for doc_id, score in pairs]
