"""Fagin's Threshold Algorithm for fused two-channel top-k.

The paper's NS component "employ[s] existing top-k ranking algorithms
[49]" — reference [49] is Fagin's Threshold Algorithm (TA).  Equation 3 is
a monotone aggregation of the BOW and BON channel scores, exactly TA's
setting: walk the channels' score lists in descending order (sorted
access), look up each newly-seen document's other-channel score (random
access), and stop as soon as the k-th best fused score exceeds the
threshold ``sum_i w_i * (last score seen on channel i)`` — no unseen
document can beat it.

Results are identical to exhaustively fusing both score maps
(property-tested); the win is early termination when the top documents
dominate both channels.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence

from repro.search.topk import top_k

#: One aggregation input: (score map, non-negative weight).
Channel = tuple[Mapping[str, float], float]


def threshold_topk(
    channels: Sequence[Channel], k: int
) -> list[tuple[str, float]]:
    """Top-``k`` documents under the weighted-sum aggregation of channels.

    Documents absent from a channel contribute 0 there (our BM25 maps only
    hold matching documents).  Ties are broken by ascending doc id, like
    :func:`repro.search.topk.top_k`.
    """
    ranked, _ = threshold_topk_with_stats(channels, k)
    return ranked


def threshold_topk_with_stats(
    channels: Sequence[Channel], k: int
) -> tuple[list[tuple[str, float]], int]:
    """Like :func:`threshold_topk`, also returning the sorted-access count
    (benchmarks use it to demonstrate early termination)."""
    if k <= 0:
        return [], 0
    active = [
        (scores, weight) for scores, weight in channels if weight > 0 and scores
    ]
    if not active:
        return [], 0
    # Sorted-access lists: descending score, ascending doc id on ties.
    sorted_lists = [
        (
            sorted(scores.items(), key=lambda kv: (-kv[1], kv[0])),
            scores,
            weight,
        )
        for scores, weight in active
    ]
    positions = [0] * len(sorted_lists)
    seen: dict[str, float] = {}
    # Min-heap of the k best fused scores seen so far.  A document's fused
    # score is fixed the moment it is first seen (random access fills in
    # the other channels), so the heap never needs updates — maintaining
    # it is O(log k) per new document instead of re-sorting all of
    # ``seen`` every round.
    best_scores: list[float] = []
    accesses = 0

    def fused_score(doc_id: str) -> float:
        return sum(
            weight * scores.get(doc_id, 0.0)
            for _, scores, weight in sorted_lists
        )

    while True:
        progressed = False
        for index, (ordered, _, _) in enumerate(sorted_lists):
            position = positions[index]
            if position >= len(ordered):
                continue
            progressed = True
            doc_id, _ = ordered[position]
            positions[index] = position + 1
            accesses += 1
            if doc_id not in seen:
                score = fused_score(doc_id)
                seen[doc_id] = score
                if len(best_scores) < k:
                    heapq.heappush(best_scores, score)
                elif score > best_scores[0]:
                    heapq.heapreplace(best_scores, score)
        if not progressed:
            break
        # Threshold: the best fused score any *unseen* document could have.
        # On an exhausted channel an unseen document scores 0, so that
        # channel contributes nothing.
        threshold = 0.0
        for index, (ordered, _, weight) in enumerate(sorted_lists):
            position = positions[index]
            if position == 0 or position > len(ordered):
                continue
            if position == len(ordered):
                continue  # exhausted: unseen docs are absent here
            threshold += weight * ordered[position - 1][1]
        exhausted = all(
            position >= len(ordered)
            for position, (ordered, _, _) in zip(positions, sorted_lists)
        )
        if len(seen) >= k:
            kth = best_scores[0]
            # Strict (>) so an unseen document cannot even tie the k-th
            # score and steal the doc-id tie-break.
            if kth > threshold or exhausted:
                break
        elif exhausted:
            break
    return top_k(seen, k), accesses
