"""NS component (paper §VI): index building and query processing.

A from-scratch inverted-index retrieval stack (the Lucene substitute):
analyzer chain, postings, BM25 and TF-IDF scoring, the Bag-Of-Node channel
over subgraph embeddings, Equation 3 score fusion, and the end-to-end
:class:`NewsLinkEngine`.
"""

from repro.search.analyzer import Analyzer
from repro.search.inverted_index import InvertedIndex
from repro.search.bm25 import Bm25Scorer
from repro.search.tfidf import TfIdfScorer
from repro.search.bon import bon_terms
from repro.search.fusion import fuse_scores, supports_pruned_ranking
from repro.search.topk import top_k
from repro.search.wand import MaxScoreRanker
from repro.search.pruned import FusedHit, FusedRanker, QueryStats
from repro.search.compiled_index import CompiledPostings, CompiledTermPostings
from repro.search.planner import PlanDecision, PlannerConfig, QueryPlanner
from repro.search.threshold import threshold_topk, threshold_topk_with_stats
from repro.search.snippets import Snippet, SnippetGenerator
from repro.search.engine import NewsLinkEngine, SearchResult

__all__ = [
    "Snippet",
    "SnippetGenerator",
    "Analyzer",
    "InvertedIndex",
    "Bm25Scorer",
    "TfIdfScorer",
    "bon_terms",
    "fuse_scores",
    "supports_pruned_ranking",
    "top_k",
    "MaxScoreRanker",
    "FusedHit",
    "FusedRanker",
    "QueryStats",
    "CompiledPostings",
    "CompiledTermPostings",
    "PlanDecision",
    "PlannerConfig",
    "QueryPlanner",
    "threshold_topk",
    "threshold_topk_with_stats",
    "NewsLinkEngine",
    "SearchResult",
]
