"""Cost-based query planning: exhaustive vs pruned, decided per query.

BENCH_query.json's tier sweep shows neither ranking path dominates: on
small corpus slices the exhaustive scorer's tight dict loop beats any
pruning (the per-candidate constants never amortize), while past the
crossover tier the compiled block-max ranker wins by an increasing
margin.  A static ``EngineConfig.ranking`` therefore leaves latency on
the table somewhere; ``ranking="auto"`` (the default) instead asks
:class:`QueryPlanner` to estimate both paths' costs *per query* from the
compiled snapshot's statistics and pick the cheaper one.

The model is deliberately coarse — calibrated unit costs, not a
simulator — because the decision only has to be right when the paths
diverge meaningfully, and near the crossover both estimates (and both
real latencies) are close:

* **exhaustive** ≈ setup + total matching postings × per-posting cost
  (one score fold per posting; `Bm25Scorer.score_weighted`);
* **pruned** ≈ setup + non-essential postings × probe cost + essential
  blocks × block-check cost + unskippable essential postings ×
  per-posting cost.  The essential split and the skippable-block
  fraction come from the same statistics the ranker itself uses: term
  upper bounds, and each term's sorted block-maxima distribution versus
  an estimated top-k threshold (the ``max(1, k // 8)``-th largest
  scaled block maximum, shrunk by a confidence factor — crediting a hot
  block with ~8 of its 64 postings reaching near its maximum; crediting
  all 64 made the planner follow pruning at k=100 where exhaustive
  measurably wins, and crediting 1 starves pruning at k=10 on skewed
  lists where it measurably wins).

Queries whose total matching postings are below
``PlannerConfig.min_total_postings`` short-circuit to exhaustive without
touching the compiled snapshot at all, so tiny corpora never pay
compilation on the planning path.

Decisions are recorded on :class:`repro.search.pruned.QueryStats`
(``planner_pruned`` / ``planner_exhaustive``) and exported as the
``newslink_planner_decisions_total{path=...}`` counter by ``repro.obs``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.config import FusionConfig
from repro.search.compiled_index import BLOCK_SIZE
from repro.search.pruned import FusedRanker


@dataclass(frozen=True)
class PlannerConfig:
    """Unit costs for the planner's two path estimates.

    The absolute scale is arbitrary (only the comparison matters); the
    ratios are calibrated against BENCH_query.json's tier sweep on this
    host: the pruned path pays roughly 4× the exhaustive path per
    *surviving* posting (a survivor is probed by every cursor and folded
    per channel vs a bare dict fold), a binary-search probe over a
    non-essential list costs a small fraction of scoring it, and each
    block-max check is a fraction of a posting score.
    """

    #: Below this many total matching postings, exhaustive always wins —
    #: the pruned path's constants cannot amortize.  Decided from raw
    #: document frequencies, before any snapshot work.
    min_total_postings: int = 2048
    exhaustive_setup_cost: float = 50.0
    exhaustive_cost_per_posting: float = 1.0
    pruned_setup_cost: float = 600.0
    pruned_cost_per_posting: float = 4.0
    skip_cost_per_posting: float = 0.15
    block_check_cost: float = 0.7
    #: Shrink factor on the estimated k-th score: overestimating the
    #: threshold overestimates skipping, which would flip borderline
    #: decisions toward the pruned path; err conservative instead.
    threshold_confidence: float = 0.85


@dataclass(frozen=True)
class PlanDecision:
    """One query's planning outcome (also attached to trace spans)."""

    path: str  # "pruned" | "exhaustive"
    est_exhaustive: float
    est_pruned: float
    total_postings: int
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "est_exhaustive": round(self.est_exhaustive, 1),
            "est_pruned": round(self.est_pruned, 1),
            "total_postings": self.total_postings,
            "reason": self.reason,
        }


class QueryPlanner:
    """Chooses the ranking path per query from snapshot statistics.

    Shares the :class:`FusedRanker`'s compiled snapshots and the
    scorers' per-term contribution tables, so planning a query that then
    runs on the pruned path does no duplicate precomputation.
    """

    def __init__(
        self, ranker: FusedRanker, config: PlannerConfig | None = None
    ) -> None:
        self._ranker = ranker
        self._config = config or PlannerConfig()

    @property
    def config(self) -> PlannerConfig:
        return self._config

    def plan(
        self,
        bow_terms: Sequence[str],
        bon_terms: Sequence[str],
        k: int,
        fusion: FusionConfig | None = None,
        profile_terms: Sequence[str] = (),
    ) -> PlanDecision:
        """Estimate both paths' costs and pick the cheaper one."""
        fusion = fusion or FusionConfig()
        beta = fusion.beta
        channel_weights = (1.0 - beta, beta, fusion.gamma)
        cfg = self._config
        scorers = self._ranker.scorers

        # Cheap features first: document frequency per distinct
        # (channel, term), straight from the index — no snapshot needed.
        # Channel 2 (context) scores on the node index, same as BON.
        entries: list[tuple[int, str, float, float, int]] = []
        total = 0
        for channel, terms in enumerate((bow_terms, bon_terms, profile_terms)):
            channel_weight = channel_weights[channel]
            if channel_weight <= 0.0 or not terms:
                continue
            index = scorers[min(channel, 1)].index
            for term, weight in Counter(terms).items():
                df = index.doc_frequency(term)
                if df == 0:
                    continue
                entries.append((channel, term, weight, channel_weight, df))
                total += df
        est_exhaustive = (
            cfg.exhaustive_setup_cost + total * cfg.exhaustive_cost_per_posting
        )
        if not entries:
            return PlanDecision(
                "exhaustive", est_exhaustive, est_exhaustive, 0, "no_postings"
            )
        # Pessimistic pruned estimate for the short-circuit: assume no
        # skipping at all.
        nominal_pruned = (
            cfg.pruned_setup_cost + total * cfg.pruned_cost_per_posting
        )
        if total < cfg.min_total_postings or k <= 0:
            return PlanDecision(
                "exhaustive",
                est_exhaustive,
                nominal_pruned,
                total,
                "below_min_postings",
            )

        snapshots, _ = self._ranker.compiled_state()
        cursors: list[tuple[int, float, float, object]] = []
        for channel, term, weight, channel_weight, df in entries:
            source = min(channel, 1)
            table = scorers[source].compiled_term(term, snapshots[source])
            if table is None:
                continue
            eff = channel_weight * (weight * table.upper)
            cursors.append((df, eff, channel_weight * weight, table))
        if not cursors:
            return PlanDecision(
                "exhaustive", est_exhaustive, est_exhaustive, 0, "no_postings"
            )

        # Estimated k-th fused score: the kb-th largest scaled block
        # maximum, crediting each hot block with ~4 of its BLOCK_SIZE
        # postings scoring near its maximum (the empirical middle ground
        # between one-per-block, which starves pruning at small k on
        # skewed lists, and all-per-block, which over-prunes at k=100).
        kb = max(1, k // (BLOCK_SIZE // 16))
        top_maxima: list[float] = []
        for df, eff, scale, table in cursors:
            for block_max in table.block_max:
                top_maxima.append(scale * block_max)
        top_maxima.sort(reverse=True)
        est_threshold = (
            top_maxima[min(kb, len(top_maxima)) - 1] * cfg.threshold_confidence
        )

        # Walk cursors cheapest-first, mirroring the ranker's essential
        # split: terms whose cumulative bound stays under the threshold
        # are only ever probed; essential terms pay block checks plus
        # the postings in blocks the threshold cannot rule out.
        cursors.sort(key=lambda c: c[1])
        prefix = 0.0
        est_pruned = cfg.pruned_setup_cost
        for df, eff, scale, table in cursors:
            prefix += eff
            if prefix < est_threshold:
                est_pruned += df * cfg.skip_cost_per_posting
                continue
            maxima = table.sorted_block_maxima()
            num_blocks = len(maxima)
            if scale > 0.0:
                skippable = bisect_left(maxima, est_threshold / scale)
            else:
                skippable = num_blocks
            survivors = 1.0 - skippable / num_blocks
            est_pruned += (
                num_blocks * cfg.block_check_cost
                + df * survivors * cfg.pruned_cost_per_posting
            )
        if est_pruned < est_exhaustive:
            return PlanDecision(
                "pruned", est_exhaustive, est_pruned, total, "pruned_cheaper"
            )
        return PlanDecision(
            "exhaustive", est_exhaustive, est_pruned, total, "exhaustive_cheaper"
        )
