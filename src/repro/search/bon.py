"""Bag-Of-Node (BON) representation of subgraph embeddings (§VI).

A document embedding becomes a bag whose "terms" are KG node ids, with term
frequency equal to the node's multiplicity across the document's segment
embeddings (overlapped nodes count higher — Figure 4's orange nodes).
"""

from __future__ import annotations

from repro.core.document_embedding import DocumentEmbedding


def bon_terms(embedding: DocumentEmbedding) -> list[str]:
    """Flatten ``embedding`` into BON index terms (node ids with repeats)."""
    terms: list[str] = []
    for node_id in sorted(embedding.node_counts):
        terms.extend([node_id] * embedding.node_counts[node_id])
    return terms
