"""Shared ranked-output ordering helpers for the top-k rankers.

Every ranker in this package keeps a size-k *min*-heap whose root is the
worst kept entry.  Ranked output breaks score ties by **ascending** doc
id, so inside the heap the worst entry between equal scores is the
*largest* doc id — heap comparisons must see doc ids in reverse order.

:class:`_ReverseStr` wraps a string doc id with inverted comparisons for
the dict-backed rankers (:mod:`repro.search.wand`,
:mod:`repro.search.pruned`).  The compiled ranker
(:mod:`repro.search.compiled_index`) interns doc ids to dense ints in
sorted order, so it gets the same reversal by negating the int — no
wrapper object needed on that path.
"""

from __future__ import annotations


class _ReverseStr:
    """A string wrapper with inverted ordering (for min-heap tie-breaks).

    In the heap, the *worst* entry must sit at the root.  Between equal
    scores the worst entry is the LARGEST doc id (we keep smaller ids), so
    comparisons are reversed.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReverseStr") -> bool:
        return self.value > other.value

    def __gt__(self, other: "_ReverseStr") -> bool:
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseStr) and self.value == other.value
