"""Delta-encoded packed posting layout — the v3 zero-copy memory map.

``CompiledPostings`` (PR 6) made the query loop walk packed arrays, but
the arrays still live on the Python heap and are rebuilt from JSON at
every load.  This module is the on-disk twin: each term's ascending doc
ints are stored as **gaps** (``gaps[0] = docs[0]``, ``gaps[i] = docs[i]
- docs[i-1]``) in the smallest of {1, 2, 4} little-endian bytes that
fits the term's largest gap, term frequencies likewise width-minimised,
and the per-64-posting block metadata (``block_last``/``block_max_tf``)
is stored verbatim so nothing per-posting happens at load time.

Three layers sit on top of the raw sections (see
``repro.search.storage`` for the container format):

* :class:`PackedPostingsReader` — zero-copy views (``memoryview.cast``)
  over one index's sections plus an O(num_terms) offset pass; no
  per-posting work.
* :class:`MmapCompiledPostings` — a :class:`CompiledPostings` whose
  term map materialises :class:`CompiledTermPostings` lazily on first
  touch (numpy ``cumsum`` un-deltas a term in one vector op), so the
  downstream block-max ranker runs the *same code* over the same array
  types and stays bit-identical to the heap-backed reference.
* :class:`FrozenInvertedIndex` — the read-only ``InvertedIndex`` facade
  scorers and persistence consume; mutation raises, and the engine
  thaws it back to a heap index before any add/remove.

Doc-int decode is exact: gaps of an ascending ``uint32`` sequence sum
back to the original values without overflow, so ``cumsum`` in
``uint32`` reproduces the array bit-for-bit.  The scalar fallback path
(numpy absent) computes the identical values.
"""

from __future__ import annotations

import json
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import DocumentNotIndexedError
from repro.search.compiled_index import (
    BLOCK_SHIFT,
    BLOCK_SIZE,
    CompiledPostings,
    CompiledTermPostings,
)

try:  # numpy accelerates encode/decode; values are identical without it.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

#: Byte widths a packed gap/tf column may use, and their typecodes.
_WIDTH_TYPECODES = {1: "B", 2: "H", 4: "I"}
_WIDTH_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4"}


def width_for(max_value: int) -> int:
    """The smallest supported byte width that holds ``max_value``."""
    if max_value <= 0xFF:
        return 1
    if max_value <= 0xFFFF:
        return 2
    if max_value <= 0xFFFFFFFF:
        return 4
    raise ValueError(f"value {max_value} exceeds uint32 range")


def encode_deltas(docs: Sequence[int]) -> tuple[int, bytes]:
    """Delta-encode an ascending uint32 sequence → ``(width, payload)``.

    ``gaps[0] = docs[0]`` and ``gaps[i] = docs[i] - docs[i-1]``; the
    width is per-term minimal, which is where the compression comes
    from (dense posting lists have single-byte gaps).  Adjacent doc
    ints produce gap 1; a leading doc int 0 produces gap 0 — both
    round-trip, property-tested in tests/search/test_packed_postings.py.
    """
    count = len(docs)
    if count == 0:
        return 1, b""
    if _np is not None:
        arr = _np.frombuffer(docs, dtype=_np.uint32) if isinstance(
            docs, array
        ) else _np.asarray(docs, dtype=_np.uint32)
        gaps = _np.diff(arr, prepend=_np.uint32(0))
        width = width_for(int(gaps.max()))
        return width, gaps.astype(_WIDTH_DTYPES[width], copy=False).tobytes()
    gaps = array("I")
    previous = 0
    largest = 0
    for doc in docs:
        gap = doc - previous
        gaps.append(gap)
        if gap > largest:
            largest = gap
        previous = doc
    width = width_for(largest)
    if width == 4:
        return width, gaps.tobytes()
    return width, array(_WIDTH_TYPECODES[width], gaps).tobytes()


def decode_deltas(payload, count: int, width: int) -> array:
    """Inverse of :func:`encode_deltas` → ascending ``array('I')``."""
    out = array("I")
    if count == 0:
        return out
    if _np is not None:
        gaps = _np.frombuffer(payload, dtype=_WIDTH_DTYPES[width], count=count)
        docs = _np.cumsum(gaps, dtype=_np.uint32)
        out.frombytes(docs.tobytes())
        return out
    gaps = array(_WIDTH_TYPECODES[width])
    gaps.frombytes(bytes(payload[: count * width]))
    total = 0
    for gap in gaps:
        total += gap
        out.append(total)
    return out


def encode_values(values: Sequence[int]) -> tuple[int, bytes]:
    """Width-minimise a uint32 sequence (term frequencies) → bytes."""
    count = len(values)
    if count == 0:
        return 1, b""
    if _np is not None:
        arr = (
            _np.frombuffer(values, dtype=_np.uint32)
            if isinstance(values, array)
            else _np.asarray(values, dtype=_np.uint32)
        )
        width = width_for(int(arr.max()))
        return width, arr.astype(_WIDTH_DTYPES[width], copy=False).tobytes()
    width = width_for(max(values))
    return width, array(_WIDTH_TYPECODES[width], values).tobytes()


def decode_values(payload, count: int, width: int):
    """Inverse of :func:`encode_values` widened back to uint32.

    Width-4 columns are returned as a zero-copy ``memoryview`` cast —
    every consumer (``build_term_scores``'s ``np.frombuffer``, the
    scalar ``zip`` fallback) reads them positionally.
    """
    if width == 4:
        view = memoryview(payload)[: count * 4]
        return view.cast("I")
    if count == 0:
        return array("I")
    if _np is not None:
        values = _np.frombuffer(
            payload, dtype=_WIDTH_DTYPES[width], count=count
        ).astype(_np.uint32)
        out = array("I")
        out.frombytes(values.tobytes())
        return out
    narrow = array(_WIDTH_TYPECODES[width])
    narrow.frombytes(bytes(payload[: count * width]))
    return array("I", narrow)


def _num_blocks(df: int) -> int:
    return (df + BLOCK_SIZE - 1) >> BLOCK_SHIFT


# ----------------------------------------------------------------------
# Writer side: one index -> named binary columns.


def pack_postings(index, universe: tuple[str, ...]) -> tuple[dict, dict[str, bytes]]:
    """Pack one index's postings against the shared sorted ``universe``.

    Returns ``(meta, columns)`` where ``columns`` maps short column
    names (``vocab``, ``df``, ...) to their binary payloads.  Works for
    heap and frozen indexes alike — both expose ``compiled()`` whose
    snapshot interns into the same sorted universe.
    """
    snapshot = index.compiled()
    if snapshot.doc_ids != universe:  # pragma: no cover - save-time guard
        raise ValueError("index doc set does not match the shared universe")
    # Sorted vocabulary canonicalises the layout: the bytes depend only
    # on the logical index contents, never on term first-seen order, so
    # save -> load -> re-save round-trips byte-identically.
    vocab = sorted(index.vocabulary())
    df = array("I")
    gap_widths = array("B")
    tf_widths = array("B")
    max_tfs = array("I")
    min_dls = array("I")
    gaps = bytearray()
    tfs = bytearray()
    block_last = array("I")
    block_max_tf = array("I")
    for term in vocab:
        postings = snapshot.term(term)
        df.append(len(postings.docs))
        gap_width, gap_payload = encode_deltas(postings.docs)
        tf_width, tf_payload = encode_values(postings.tfs)
        gap_widths.append(gap_width)
        tf_widths.append(tf_width)
        gaps += gap_payload
        tfs += tf_payload
        max_tfs.append(postings.max_tf)
        min_dls.append(index.min_doc_length(term))
        block_last.extend(postings.block_last)
        block_max_tf.extend(postings.block_max_tf)
    doc_lengths = snapshot.doc_lengths
    meta = {
        "num_terms": len(vocab),
        "total_length": int(sum(index.doc_lengths().values())),
    }
    columns = {
        "vocab": json.dumps(vocab, ensure_ascii=False).encode("utf-8"),
        "df": df.tobytes(),
        "gapw": gap_widths.tobytes(),
        "tfw": tf_widths.tobytes(),
        "maxtf": max_tfs.tobytes(),
        "mindl": min_dls.tobytes(),
        "gaps": bytes(gaps),
        "tfs": bytes(tfs),
        "blast": block_last.tobytes(),
        "bmaxtf": block_max_tf.tobytes(),
        "doclen": bytes(doc_lengths)
        if isinstance(doc_lengths, memoryview)
        else doc_lengths.tobytes(),
    }
    return meta, columns


# ----------------------------------------------------------------------
# Reader side: zero-copy views + lazy per-term materialisation.


class PackedPostingsReader:
    """Zero-copy view over one index's packed columns.

    Construction is O(num_terms): one vectorised cumulative pass turns
    the per-term ``df``/width columns into byte offsets.  Nothing
    per-posting runs until a term is first touched by a query.
    """

    def __init__(
        self,
        columns: Mapping[str, "memoryview | bytes"],
        universe: tuple[str, ...],
        index_of: dict[str, int],
        meta: Mapping,
    ) -> None:
        self.universe = universe
        self.index_of = index_of
        self.vocab: list[str] = json.loads(bytes(columns["vocab"]))
        self.slot_of = {term: i for i, term in enumerate(self.vocab)}
        self.df = memoryview(columns["df"]).cast("I")
        self.gap_widths = memoryview(columns["gapw"]).cast("B")
        self.tf_widths = memoryview(columns["tfw"]).cast("B")
        self.max_tfs = memoryview(columns["maxtf"]).cast("I")
        self.min_dls = memoryview(columns["mindl"]).cast("I")
        self.gaps = memoryview(columns["gaps"])
        self.tfs = memoryview(columns["tfs"])
        self.block_last = memoryview(columns["blast"]).cast("I")
        self.block_max_tf = memoryview(columns["bmaxtf"]).cast("I")
        self.doc_lengths_view = memoryview(columns["doclen"]).cast("I")
        self.total_length = int(meta["total_length"])
        self._compute_offsets()

    def _compute_offsets(self) -> None:
        num_terms = len(self.vocab)
        if _np is not None:
            df = _np.frombuffer(self.df, dtype=_np.uint32).astype(_np.int64)
            gap_widths = _np.frombuffer(self.gap_widths, dtype=_np.uint8)
            tf_widths = _np.frombuffer(self.tf_widths, dtype=_np.uint8)
            gap_offsets = _np.zeros(num_terms + 1, dtype=_np.int64)
            tf_offsets = _np.zeros(num_terms + 1, dtype=_np.int64)
            block_offsets = _np.zeros(num_terms + 1, dtype=_np.int64)
            _np.cumsum(df * gap_widths, out=gap_offsets[1:])
            _np.cumsum(df * tf_widths, out=tf_offsets[1:])
            _np.cumsum((df + BLOCK_SIZE - 1) >> BLOCK_SHIFT, out=block_offsets[1:])
            self._gap_offsets = gap_offsets
            self._tf_offsets = tf_offsets
            self._block_offsets = block_offsets
            return
        gap_offsets = [0] * (num_terms + 1)
        tf_offsets = [0] * (num_terms + 1)
        block_offsets = [0] * (num_terms + 1)
        for i in range(num_terms):
            df = self.df[i]
            gap_offsets[i + 1] = gap_offsets[i] + df * self.gap_widths[i]
            tf_offsets[i + 1] = tf_offsets[i] + df * self.tf_widths[i]
            block_offsets[i + 1] = block_offsets[i] + _num_blocks(df)
        self._gap_offsets = gap_offsets
        self._tf_offsets = tf_offsets
        self._block_offsets = block_offsets

    @property
    def num_docs(self) -> int:
        return len(self.universe)

    @property
    def num_terms(self) -> int:
        return len(self.vocab)

    @property
    def avg_doc_length(self) -> float:
        # Same int/int division as InvertedIndex.avg_doc_length: the
        # stored exact total reproduces the identical float.
        if not self.universe:
            return 0.0
        return self.total_length / len(self.universe)

    def materialize(self, slot: int) -> CompiledTermPostings:
        """Decode one term into a :class:`CompiledTermPostings`.

        Doc ints become a real ``array('I')`` (cursor ``bisect`` needs
        random access anyway); tfs and block metadata stay zero-copy
        views when their stored width allows.
        """
        df = self.df[slot]
        gap_width = self.gap_widths[slot]
        start = int(self._gap_offsets[slot])
        docs = decode_deltas(
            self.gaps[start : start + df * gap_width], df, gap_width
        )
        tf_width = self.tf_widths[slot]
        start = int(self._tf_offsets[slot])
        tfs = decode_values(
            self.tfs[start : start + df * tf_width], df, tf_width
        )
        block_start = int(self._block_offsets[slot])
        block_end = block_start + _num_blocks(df)
        return CompiledTermPostings.from_parts(
            docs,
            tfs,
            self.block_last[block_start:block_end],
            self.block_max_tf[block_start:block_end],
            int(self.max_tfs[slot]),
        )


class _LazyTermMap:
    """Dict-like term map that materialises packed terms on first touch."""

    __slots__ = ("_reader", "_cache")

    def __init__(self, reader: PackedPostingsReader) -> None:
        self._reader = reader
        self._cache: dict[str, CompiledTermPostings] = {}

    def get(self, term: str, default=None):
        postings = self._cache.get(term)
        if postings is not None:
            return postings
        slot = self._reader.slot_of.get(term)
        if slot is None:
            return default
        postings = self._reader.materialize(slot)
        self._cache[term] = postings
        return postings

    def __getitem__(self, term: str) -> CompiledTermPostings:
        postings = self.get(term)
        if postings is None:
            raise KeyError(term)
        return postings

    def __contains__(self, term: object) -> bool:
        return term in self._reader.slot_of

    def __len__(self) -> int:
        return len(self._reader.slot_of)

    def __iter__(self):
        return iter(self._reader.slot_of)

    def keys(self):
        return self._reader.slot_of.keys()

    def values(self):
        return (self.get(term) for term in self._reader.slot_of)

    def items(self):
        return ((term, self.get(term)) for term in self._reader.slot_of)


class MmapCompiledPostings(CompiledPostings):
    """A :class:`CompiledPostings` backed by mapped sections.

    Same attributes, same downstream code path (``fused_top_k``,
    ``Bm25Scorer.compiled_term``); the only difference is that
    ``term()`` decodes lazily and ``doc_lengths`` is a zero-copy view.
    ``version`` is 0: a frozen snapshot never mutates (the engine thaws
    to a heap index first), so every version-keyed cache stays valid.
    """

    __slots__ = ()

    def __init__(self, reader: PackedPostingsReader) -> None:
        self.version = 0
        self.doc_ids = reader.universe
        self.index_of = reader.index_of
        self.doc_lengths = reader.doc_lengths_view
        self.avg_doc_length = reader.avg_doc_length
        self._terms = _LazyTermMap(reader)

    def memory_bytes(self) -> int:
        """Mapped bytes of the packed columns (shared, not heap-private)."""
        reader = self._terms._reader
        total = 0
        for view in (
            reader.df,
            reader.gap_widths,
            reader.tf_widths,
            reader.max_tfs,
            reader.min_dls,
            reader.gaps,
            reader.tfs,
            reader.block_last,
            reader.block_max_tf,
            reader.doc_lengths_view,
        ):
            total += view.nbytes
        return total


class FrozenInvertedIndex:
    """Read-only ``InvertedIndex`` facade over packed mapped columns.

    Exposes the full read API scorers and persistence rely on; the
    dict-shaped views (``postings``, ``sorted_postings``,
    ``doc_lengths``) are built lazily per term and cached, so the
    exhaustive/reference paths still work — they just pay the decode on
    first touch.  Mutation raises ``TypeError``: the engine converts a
    frozen index back to a heap :class:`InvertedIndex` (*thaw*) before
    any add/remove, see ``NewsLinkEngine._thaw_if_frozen``.

    ``version`` is 0 and never changes — valid precisely because the
    structure is immutable, so version-keyed scorer caches never go
    stale.
    """

    def __init__(self, reader: PackedPostingsReader) -> None:
        self._reader = reader
        self._compiled = MmapCompiledPostings(reader)
        self._postings_cache: dict[str, dict[str, int]] = {}
        self._sorted_cache: dict[str, list[tuple[str, int]]] = {}
        self._doc_lengths_map: dict[str, int] | None = None

    # -- mutation: explicitly refused -----------------------------------
    def _frozen_error(self) -> TypeError:
        return TypeError(
            "frozen (mmap-backed) index is immutable; the engine must "
            "thaw it to a heap InvertedIndex before mutating"
        )

    def add_document(self, doc_id, terms):
        raise self._frozen_error()

    def add_document_counts(self, doc_id, counts):
        raise self._frozen_error()

    def load_documents_sorted(self, items):
        raise self._frozen_error()

    def remove_document(self, doc_id):
        raise self._frozen_error()

    # -- read API --------------------------------------------------------
    def compiled(self) -> MmapCompiledPostings:
        return self._compiled

    def postings(self, term: str) -> dict[str, int]:
        cached = self._postings_cache.get(term)
        if cached is None:
            postings = self._compiled.term(term)
            if postings is None:
                return {}
            universe = self._reader.universe
            cached = {
                universe[doc]: tf
                for doc, tf in zip(postings.docs, postings.tfs)
            }
            self._postings_cache[term] = cached
        return cached

    def sorted_postings(self, term: str) -> Sequence[tuple[str, int]]:
        cached = self._sorted_cache.get(term)
        if cached is None:
            postings = self._compiled.term(term)
            if postings is None:
                return []
            universe = self._reader.universe
            cached = [
                (universe[doc], tf)
                for doc, tf in zip(postings.docs, postings.tfs)
            ]
            self._sorted_cache[term] = cached
        return cached

    def max_term_frequency(self, term: str) -> int:
        slot = self._reader.slot_of.get(term)
        return 0 if slot is None else int(self._reader.max_tfs[slot])

    def min_doc_length(self, term: str) -> int:
        slot = self._reader.slot_of.get(term)
        return 0 if slot is None else int(self._reader.min_dls[slot])

    def doc_frequency(self, term: str) -> int:
        slot = self._reader.slot_of.get(term)
        return 0 if slot is None else int(self._reader.df[slot])

    def doc_length(self, doc_id: str) -> int:
        position = self._reader.index_of.get(doc_id)
        if position is None:
            raise DocumentNotIndexedError(doc_id)
        return int(self._reader.doc_lengths_view[position])

    def doc_lengths(self) -> Mapping[str, int]:
        mapping = self._doc_lengths_map
        if mapping is None:
            view = self._reader.doc_lengths_view
            mapping = {
                doc_id: view[i]
                for i, doc_id in enumerate(self._reader.universe)
            }
            self._doc_lengths_map = mapping
        return mapping

    def doc_terms(self, doc_id: str) -> tuple[str, ...]:
        if doc_id not in self._reader.index_of:
            raise DocumentNotIndexedError(doc_id)
        position = self._reader.index_of[doc_id]
        terms = []
        for term in self._reader.vocab:
            postings = self._compiled.term(term)
            i = bisect_left(postings.docs, position)
            if i < len(postings.docs) and postings.docs[i] == position:
                terms.append(term)
        return tuple(terms)

    def to_forward_map(self) -> dict[str, dict[str, int]]:
        """doc_id -> {term: tf} — the thaw/re-save representation."""
        universe = self._reader.universe
        forward: dict[str, dict[str, int]] = {
            doc_id: {} for doc_id in universe
        }
        for term in self._reader.vocab:
            postings = self._compiled.term(term)
            for doc, tf in zip(postings.docs, postings.tfs):
                forward[universe[doc]][term] = tf
        return forward

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._reader.index_of

    @property
    def version(self) -> int:
        return 0

    @property
    def num_docs(self) -> int:
        return len(self._reader.universe)

    @property
    def num_terms(self) -> int:
        return len(self._reader.vocab)

    @property
    def total_length(self) -> int:
        return self._reader.total_length

    @property
    def avg_doc_length(self) -> float:
        return self._reader.avg_doc_length

    def doc_ids(self) -> list[str]:
        return list(self._reader.universe)

    def vocabulary(self) -> Iterable[str]:
        return self._reader.vocab
