"""Text analysis chain for indexing and querying.

Mirrors Lucene's default English analysis: lowercase tokenization, stopword
removal and (Porter) stemming.
"""

from __future__ import annotations

from repro.nlp.stemmer import porter_stem
from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import tokenize_words


class Analyzer:
    """Configurable lowercase/stop/stem analyzer."""

    def __init__(self, remove_stopwords: bool = True, stem: bool = True) -> None:
        self._remove_stopwords = remove_stopwords
        self._stem = stem
        self._stem_cache: dict[str, str] = {}

    def analyze(self, text: str) -> list[str]:
        """Analyze ``text`` into index terms."""
        terms = []
        for word in tokenize_words(text, lowercase=True):
            if self._remove_stopwords and is_stopword(word):
                continue
            if self._stem:
                word = self._cached_stem(word)
            terms.append(word)
        return terms

    def _cached_stem(self, word: str) -> str:
        stemmed = self._stem_cache.get(word)
        if stemmed is None:
            stemmed = porter_stem(word)
            self._stem_cache[word] = stemmed
        return stemmed
