"""Fused two-channel dynamic pruning — the engine's query-serving fast path.

``NewsLinkEngine._rank``'s exhaustive reference path scores **every**
document matching any query term on both channels, materializes two full
score maps, fuses them (Equation 3) and only then top-k's.  The paper's
NS component instead "employ[s] existing top-k ranking algorithms [49],
[38]" — the threshold-algorithm family.  :class:`FusedRanker` is that
fast path: a MaxScore-style document-at-a-time ranker that walks the
posting lists of *both* indexes at once under the Equation 3 weighted sum

``F = (1 - beta) * F_BOW + beta * F_BON + gamma * F_CTX``

with per-term upper bounds scaled by the channel weights, so a document
is scored only when it could still enter the top k.  The optional CTX
channel carries personalization/session context nodes
(:mod:`repro.personalize`) scored on the *same* node index as BON; with
``gamma = 0`` or no context terms it contributes no cursors, and both
control flow and float summation order are exactly the two-channel
ranker's.

Exactness
---------
The ranked output (ids, scores, per-channel scores, doc-id tie-breaks) is
*identical* to the exhaustive path, property-tested in
``tests/search/test_pruned.py``:

* per-document scores are accumulated per channel in query-term order and
  combined exactly like :func:`repro.search.fusion.fuse_scores`, from the
  same cached IDF/norm values :meth:`Bm25Scorer.score_weighted` uses, so
  float sums are bit-identical, not merely close;
* upper bounds are inflated by a relative ``1e-9`` safety margin before
  threshold comparisons.  Floating-point sums of true real-valued bounds
  can round *below* the float sum of the true contributions when both
  coincide; the margin (many orders of magnitude above the achievable
  few-ulp error, and far below any score gap of interest) makes every
  prune decision safe while giving up a negligible amount of pruning;
* the prune test is strict (``bound < threshold``): a document whose
  bound ties the k-th score could still win the ascending-doc-id
  tie-break, so it is always scored.

All per-term inputs (sorted posting arrays, max tf, min matching doc
length, IDF, length norms) come from the incrementally-maintained
index/scorer metadata — nothing is re-sorted or re-scanned per query.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, fields
from typing import NamedTuple, Sequence

from repro.config import FusionConfig
from repro.search.bm25 import Bm25Scorer
from repro.search.order import _ReverseStr

#: Relative inflation applied to upper bounds before threshold
#: comparisons; see the module docstring's exactness discussion.
_SAFETY = 1.0 + 1e-9


@dataclass
class QueryStats:
    """Observability counters for query serving, aggregated per engine.

    Attributes:
        queries: ranked queries served (both paths).
        pruned_queries: queries served by the :class:`FusedRanker` path.
        fallback_queries: queries served by the exhaustive reference path
            (``ranking="exhaustive"`` or ``fusion.normalize=True``).
        degraded_queries: queries served text-only because the per-query
            deadline expired during query embedding (see
            ``docs/robustness.md``); always also counted in ``queries``.
        matching_docs: documents matching at least one query term.  Only
            counted on the exhaustive path — not enumerating this set is
            precisely the pruned path's win.
        candidates_examined: documents fully scored.
        docs_pruned: candidate documents discarded by an upper-bound
            check without being scored.
        postings_advanced: total posting-list positions moved.
        cursor_skips: ``advance_to`` calls that jumped a cursor over at
            least one posting via binary search (skipped postings are
            still counted in ``postings_advanced``).
        blocks_skipped: block-max prune decisions (compiled backend
            only) that jumped cursors past more than one document in a
            single bound check; see ``repro.search.compiled_index``.
        planner_pruned: queries the cost-based planner routed to the
            pruned path (``ranking="auto"`` only).
        planner_exhaustive: queries the planner routed to the
            exhaustive path (``ranking="auto"`` only).
        personalized_queries: queries ranked with an active context
            channel (non-empty profile/session terms and ``gamma > 0``);
            always also counted in ``queries``.
    """

    queries: int = 0
    pruned_queries: int = 0
    fallback_queries: int = 0
    degraded_queries: int = 0
    personalized_queries: int = 0
    matching_docs: int = 0
    candidates_examined: int = 0
    docs_pruned: int = 0
    postings_advanced: int = 0
    cursor_skips: int = 0
    blocks_skipped: int = 0
    planner_pruned: int = 0
    planner_exhaustive: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Fold another query's counters into this aggregate."""
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (benchmark/serialization helper)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}


class FusedHit(NamedTuple):
    """One ranked document with its fused and per-channel scores."""

    doc_id: str
    score: float
    bow_score: float
    bon_score: float
    profile_score: float = 0.0


class _FusedCursor:
    """A sorted posting-list cursor for one (channel, term) pair.

    ``bound`` is the term's weighted BM25 upper bound *within* its
    channel; ``eff_bound`` additionally carries the Equation 3 channel
    weight and is what MaxScore orders and sums.  ``ordinal`` preserves
    query-term order so exact scores can be folded canonically.
    """

    __slots__ = (
        "term",
        "weight",
        "eff_bound",
        "postings",
        "position",
        "size",
        "current",
        "channel",
        "ordinal",
    )

    def __init__(
        self,
        term: str,
        weight: float,
        eff_bound: float,
        postings: Sequence[tuple[str, int]],
        channel: int,
        ordinal: int,
    ) -> None:
        self.term = term
        self.weight = weight
        self.eff_bound = eff_bound
        self.postings = postings
        self.position = 0
        self.size = len(postings)
        # The current posting's doc id, None when exhausted — cached so
        # the per-candidate scan is attribute reads, not indexing.
        self.current: str | None = postings[0][0] if postings else None
        self.channel = channel
        self.ordinal = ordinal

    @property
    def exhausted(self) -> bool:
        return self.current is None

    @property
    def current_tf(self) -> int:
        return self.postings[self.position][1]

    def step(self) -> None:
        """Advance one posting."""
        position = self.position + 1
        self.position = position
        self.current = (
            self.postings[position][0] if position < self.size else None
        )

    def advance_to(self, doc_id: str) -> int:
        """Move to the first posting with doc >= doc_id; returns the jump."""
        postings = self.postings
        start = self.position
        lo, hi = start, self.size
        while lo < hi:
            mid = (lo + hi) // 2
            if postings[mid][0] < doc_id:
                lo = mid + 1
            else:
                hi = mid
        self.position = lo
        self.current = postings[lo][0] if lo < self.size else None
        return lo - start


class FusedRanker:
    """Top-k of the Equation 3 fused score with MaxScore pruning.

    Runs document-at-a-time over the text (BOW) and node (BON) channels
    simultaneously.  Cursors are kept in ascending effective-upper-bound
    order; once the k-th fused score exceeds the cumulative bound of the
    cheapest cursors, those become *non-essential*: documents appearing
    only in them can never enter the top k, so their postings are skipped
    wholesale — non-essential cursors are advanced by binary search only
    when an essential candidate needs probing.

    Two backends produce bit-identical ranked output:

    * ``"reference"`` (this module): dict/tuple postings, the
      differential oracle;
    * ``"compiled"``: packed-array postings with block-max skipping
      (:mod:`repro.search.compiled_index`), the production fast path.
    """

    #: Valid values for the ``backend`` constructor/``top_k`` argument.
    BACKENDS = ("compiled", "reference")

    def __init__(
        self,
        bow_scorer: Bm25Scorer,
        bon_scorer: Bm25Scorer,
        backend: str = "reference",
    ) -> None:
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown FusedRanker backend {backend!r}; "
                f"expected one of {self.BACKENDS}"
            )
        self._scorers = (bow_scorer, bon_scorer)
        self._backend = backend
        # (text version, node version) -> (snapshots, universe); the
        # compiled backend's per-mutation-epoch snapshot pair.
        self._snapshot_key: tuple[int, int] | None = None
        self._snapshot_state: tuple[tuple, tuple[str, ...]] | None = None

    @property
    def backend(self) -> str:
        """The default backend ``top_k`` dispatches to."""
        return self._backend

    @property
    def scorers(self) -> tuple[Bm25Scorer, Bm25Scorer]:
        """The (BOW, BON) channel scorers (shared with the planner)."""
        return self._scorers

    def compiled_state(self) -> tuple[tuple, tuple[str, ...]]:
        """The per-channel compiled snapshots and their shared universe.

        Both snapshots intern doc ids into the *same* dense int space:
        when the two indexes hold identical doc sets (the engine always
        does — documents are added/removed from both channels in
        lockstep) each index's own cached snapshot is reused; otherwise
        both are compiled against the sorted union.  Cached per
        (text version, node version) pair; the planner shares it.
        """
        text_index = self._scorers[0].index
        node_index = self._scorers[1].index
        key = (text_index.version, node_index.version)
        if self._snapshot_key == key and self._snapshot_state is not None:
            return self._snapshot_state
        from repro.search.compiled_index import CompiledPostings

        text_snap = text_index.compiled()
        node_snap = node_index.compiled()
        if text_snap.doc_ids == node_snap.doc_ids:
            universe = text_snap.doc_ids
        else:
            universe = tuple(
                sorted(set(text_index.doc_ids()) | set(node_index.doc_ids()))
            )
            text_snap = CompiledPostings.from_index(text_index, universe)
            node_snap = CompiledPostings.from_index(node_index, universe)
        state = ((text_snap, node_snap), universe)
        self._snapshot_key = key
        self._snapshot_state = state
        return state

    # ------------------------------------------------------------------
    def _build_cursors(
        self,
        bow_terms: Sequence[str],
        bon_terms: Sequence[str],
        channel_weights: tuple[float, float, float],
        profile_terms: Sequence[str] = (),
    ) -> list[_FusedCursor]:
        cursors: list[_FusedCursor] = []
        ordinal = 0
        # Channel 2 (context) scores on the node index, same as BON.
        scorers = (self._scorers[0], self._scorers[1], self._scorers[1])
        for channel, terms in enumerate((bow_terms, bon_terms, profile_terms)):
            channel_weight = channel_weights[channel]
            if channel_weight <= 0.0 or not terms:
                continue
            scorer = scorers[channel]
            index = scorer.index
            for term, weight in Counter(terms).items():
                postings = index.sorted_postings(term)
                if not postings:
                    continue
                eff = channel_weight * (weight * scorer.term_upper_bound(term))
                cursors.append(
                    _FusedCursor(term, weight, eff, postings, channel, ordinal)
                )
                ordinal += 1
        return cursors

    @staticmethod
    def _prefix_bounds(cursors: list[_FusedCursor]) -> list[float]:
        """prefix[i] = sum of the i cheapest cursors' effective bounds."""
        prefix = [0.0] * (len(cursors) + 1)
        for i, cursor in enumerate(cursors):
            prefix[i + 1] = prefix[i] + cursor.eff_bound
        return prefix

    @staticmethod
    def _boundary(prefix: list[float], count: int, threshold: float) -> int:
        """How many of the cheapest cursors are non-essential.

        A document matching only cursors[0:f] has fused score at most
        ``prefix[f]`` (inflated), so with a strict comparison it can
        never enter — or tie into — the current top k.
        """
        f = 0
        while f < count and prefix[f + 1] * _SAFETY < threshold:
            f += 1
        return f

    # ------------------------------------------------------------------
    def top_k(
        self,
        bow_terms: Sequence[str],
        bon_terms: Sequence[str],
        k: int,
        fusion: FusionConfig | None = None,
        backend: str | None = None,
        profile_terms: Sequence[str] = (),
    ) -> tuple[list[FusedHit], QueryStats]:
        """The top-``k`` documents under the fused Equation 3 score.

        ``bow_terms`` are analyzed text terms; ``bon_terms`` are the
        query embedding's BON node ids; ``profile_terms`` are optional
        personalization/session context nodes weighted by
        ``fusion.gamma``.  Returns the ranked hits and the query's
        pruning counters.  ``backend`` overrides the ranker's default
        (``"compiled"`` or ``"reference"``); both return bit-identical
        output.
        """
        if backend is None:
            backend = self._backend
        elif backend not in self.BACKENDS:
            raise ValueError(
                f"unknown FusedRanker backend {backend!r}; "
                f"expected one of {self.BACKENDS}"
            )
        if backend == "compiled":
            from repro.search.compiled_index import fused_top_k

            snapshots, universe = self.compiled_state()
            return fused_top_k(
                self._scorers,
                snapshots,
                universe,
                bow_terms,
                bon_terms,
                k,
                fusion,
                profile_terms=profile_terms,
            )
        fusion = fusion or FusionConfig()
        beta = fusion.beta
        channel_weights = (1.0 - beta, beta, fusion.gamma)
        stats = QueryStats(queries=1, pruned_queries=1)
        if k <= 0:
            return [], stats
        cursors = self._build_cursors(
            bow_terms, bon_terms, channel_weights, profile_terms
        )
        if not cursors:
            return [], stats
        cursors.sort(key=lambda c: c.eff_bound)
        prefix = self._prefix_bounds(cursors)
        scorers = (self._scorers[0], self._scorers[1], self._scorers[1])

        # Min-heap of (score, reversed-doc-id, bow_sum, bon_sum,
        # ctx_sum): the worst kept entry sits at the root; between equal
        # scores the worst is the largest doc id (see wand._ReverseStr).
        heap: list[tuple[float, _ReverseStr, float, float, float]] = []
        threshold = float("-inf")
        first_essential = 0

        num_cursors = len(cursors)
        while True:
            # Next candidate: smallest current doc over *essential* cursors.
            candidate: str | None = None
            matches: list[_FusedCursor] = []
            for i in range(first_essential, num_cursors):
                cursor = cursors[i]
                doc = cursor.current
                if doc is None:
                    continue
                if candidate is None or doc < candidate:
                    candidate = doc
                    matches = [cursor]
                elif doc == candidate:
                    matches.append(cursor)
            if candidate is None:
                break

            essential_bound = 0.0
            for cursor in matches:
                essential_bound += cursor.eff_bound
            # Quick check: even with every non-essential term matching,
            # the candidate cannot reach the k-th score — skip it without
            # probing the non-essential cursors at all.
            quick = (essential_bound + prefix[first_essential]) * _SAFETY
            if len(heap) == k and quick < threshold:
                stats.docs_pruned += 1
                for cursor in matches:
                    cursor.step()
                    stats.postings_advanced += 1
            else:
                # Probe non-essential cursors (binary-search skip).
                for i in range(first_essential):
                    cursor = cursors[i]
                    if cursor.current is None:
                        continue
                    moved = cursor.advance_to(candidate)
                    stats.postings_advanced += moved
                    if moved > 1:
                        stats.cursor_skips += 1
                    if cursor.current == candidate:
                        matches.append(cursor)
                bound = 0.0
                for cursor in matches:
                    bound += cursor.eff_bound
                if len(heap) == k and bound * _SAFETY < threshold:
                    stats.docs_pruned += 1
                    for cursor in matches:
                        cursor.step()
                        stats.postings_advanced += 1
                else:
                    # Exact score: per-channel left folds in query-term
                    # order, combined exactly like fuse_scores.
                    matches.sort(key=lambda c: c.ordinal)
                    sums = [0.0, 0.0, 0.0]
                    matched = [False, False, False]
                    for cursor in matches:
                        contribution = scorers[cursor.channel].term_contribution(
                            cursor.term, cursor.current_tf, candidate
                        )
                        sums[cursor.channel] = (
                            sums[cursor.channel] + cursor.weight * contribution
                        )
                        matched[cursor.channel] = True
                        cursor.step()
                        stats.postings_advanced += 1
                    score = 0.0
                    if matched[0]:
                        score = channel_weights[0] * sums[0]
                    if matched[1]:
                        score = score + channel_weights[1] * sums[1]
                    if matched[2]:
                        score = score + channel_weights[2] * sums[2]
                    stats.candidates_examined += 1
                    entry = (
                        score,
                        _ReverseStr(candidate),
                        sums[0] if matched[0] else 0.0,
                        sums[1] if matched[1] else 0.0,
                        sums[2] if matched[2] else 0.0,
                    )
                    if len(heap) < k:
                        heapq.heappush(heap, entry)
                    elif entry > heap[0]:
                        heapq.heapreplace(heap, entry)
                    if len(heap) == k and heap[0][0] != threshold:
                        threshold = heap[0][0]
                        first_essential = self._boundary(
                            prefix, len(cursors), threshold
                        )

            # Compact exhausted cursors so their bounds stop inflating the
            # non-essential budget (order is preserved; a cursor can only
            # ever move from essential to non-essential, so candidates
            # stay strictly increasing).
            if any(cursor.current is None for cursor in cursors):
                cursors = [c for c in cursors if c.current is not None]
                num_cursors = len(cursors)
                prefix = self._prefix_bounds(cursors)
                first_essential = self._boundary(
                    prefix, num_cursors, threshold
                )

        ranked = sorted(
            heap, key=lambda entry: (-entry[0], entry[1].value)
        )
        return (
            [
                FusedHit(rev.value, score, bow, bon, ctx)
                for score, rev, bow, bon, ctx in ranked
            ],
            stats,
        )
