"""BM25 scoring (Robertson & Zaragoza), with Lucene's IDF formulation.

This is the term-weighting the paper uses for both channels: "The scoring
is based on BM25 with default settings provided by Lucene" (§VII-A4).

IDF values and per-document length norms are cached per index version
(see :attr:`InvertedIndex.version`), so repeated queries against an
unchanged index pay one dictionary lookup per term/document instead of a
log/division each — and the dynamic-pruning rankers
(:mod:`repro.search.wand`, :mod:`repro.search.pruned`) reuse exactly the
same cached values, which keeps their scores bit-identical to this
exhaustive reference.
"""

from __future__ import annotations

import math
from array import array
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.config import Bm25Config
from repro.search.inverted_index import InvertedIndex


@dataclass(frozen=True)
class CorpusStats:
    """Corpus-wide BM25 statistics, decoupled from any one index.

    A document-partitioned shard holds only its slice of the corpus, but
    BM25's IDF and length norms depend on *corpus-wide* document count,
    document frequencies and average document length.  Scoring a shard's
    postings with its local statistics would produce scores that differ
    from a whole-corpus engine — and the scatter-gather merge would no
    longer be bit-identical to the single-engine oracle.

    :meth:`of_index` captures the statistics of a fully indexed corpus;
    handing the frozen record to each shard's :class:`Bm25Scorer` (via
    ``stats=``) makes every per-posting contribution the exact float the
    oracle computes, because the formula inputs are the same values.

    ``avg_doc_length`` is stored as the already-divided float (the value
    :attr:`InvertedIndex.avg_doc_length` returns) rather than as
    totals, so shards reuse the oracle's division result bit-for-bit.
    """

    num_docs: int
    avg_doc_length: float
    df: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def of_index(cls, index: InvertedIndex) -> "CorpusStats":
        """Snapshot ``index``'s scoring statistics (df over its whole
        vocabulary)."""
        return cls(
            num_docs=index.num_docs,
            avg_doc_length=index.avg_doc_length if index.num_docs else 0.0,
            df={term: index.doc_frequency(term) for term in index.vocabulary()},
        )

    def doc_frequency(self, term: str) -> int:
        """Corpus-wide document frequency (0 for unknown terms)."""
        return self.df.get(term, 0)


class Bm25Scorer:
    """Scores queries against an :class:`InvertedIndex` with BM25.

    ``stats`` optionally overrides the corpus-wide statistics (document
    count, per-term document frequency, average document length) read
    from the index — the seam document-partitioned shards use to score
    their partial posting lists with whole-corpus statistics (see
    :class:`CorpusStats`).  Per-document inputs (tf, doc length) always
    come from the local index.
    """

    def __init__(
        self,
        index: InvertedIndex,
        config: Bm25Config | None = None,
        stats: CorpusStats | None = None,
    ) -> None:
        self._index = index
        self._config = config or Bm25Config()
        self._stats = stats
        self._idf_cache: dict[str, float] = {}
        self._norm_cache: dict[str, float] = {}
        self._cache_version = -1
        # Compiled-layout caches, keyed by snapshot identity: the dense
        # norm array and per-term contribution tables used by the
        # compiled ranker backend (repro.search.compiled_index).
        self._compiled_snapshot: object | None = None
        self._compiled_norms: array | None = None
        self._compiled_terms: dict[str, object] = {}

    @property
    def index(self) -> InvertedIndex:
        """The underlying index."""
        return self._index

    @property
    def config(self) -> Bm25Config:
        """The BM25 parameters."""
        return self._config

    @property
    def stats(self) -> CorpusStats | None:
        """The corpus-wide statistics override (None = use the index)."""
        return self._stats

    def _num_docs(self) -> int:
        stats = self._stats
        return stats.num_docs if stats is not None else self._index.num_docs

    def _doc_frequency(self, term: str) -> int:
        stats = self._stats
        if stats is not None:
            return stats.doc_frequency(term)
        return self._index.doc_frequency(term)

    def _avg_doc_length(self) -> float:
        stats = self._stats
        if stats is not None:
            return stats.avg_doc_length
        return self._index.avg_doc_length

    def _refresh_caches(self) -> None:
        version = self._index.version
        if version != self._cache_version:
            self._idf_cache.clear()
            self._norm_cache.clear()
            self._cache_version = version

    def idf(self, term: str) -> float:
        """Lucene's BM25 IDF: ``ln(1 + (N - df + 0.5) / (df + 0.5))``.

        Cached per (term, index version): recomputed only after mutations.
        """
        self._refresh_caches()
        idf = self._idf_cache.get(term)
        if idf is None:
            df = self._doc_frequency(term)
            n = self._num_docs()
            idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
            self._idf_cache[term] = idf
        return idf

    def norms(self) -> Mapping[str, float]:
        """Per-document BM25 length norms ``1 - b + b * dl / avgdl``.

        Precomputed once per index version and shared by every query (and
        by the pruning rankers), instead of one division per posting.
        """
        self._refresh_caches()
        if not self._norm_cache and self._index.num_docs:
            b = self._config.b
            avgdl = self._avg_doc_length()
            if avgdl == 0:
                self._norm_cache = {
                    doc_id: 1.0 for doc_id in self._index.doc_lengths()
                }
            else:
                self._norm_cache = {
                    doc_id: 1.0 - b + b * dl / avgdl
                    for doc_id, dl in self._index.doc_lengths().items()
                }
        return self._norm_cache

    def compiled_term(self, term: str, snapshot=None):
        """The term's packed contribution table against a compiled snapshot.

        Returns a :class:`repro.search.compiled_index.CompiledTermScores`
        (or None when the term has no postings): the exact per-posting
        BM25 contributions of :meth:`term_contribution` as an
        ``array('d')`` plus per-block maxima, so the compiled ranker's
        inner loop does no dict lookups at all.  Tables are cached per
        snapshot (snapshots are version-keyed, so a mutation invalidates
        them); ``snapshot`` defaults to ``self.index.compiled()``.
        """
        if snapshot is None:
            snapshot = self._index.compiled()
        if self._compiled_snapshot is not snapshot:
            self._compiled_snapshot = snapshot
            self._compiled_norms = None
            self._compiled_terms = {}
        try:
            return self._compiled_terms[term]
        except KeyError:
            pass
        from repro.search.compiled_index import build_term_scores

        postings = snapshot.term(term)
        if postings is None or not len(postings):
            table = None
        else:
            norms = self._compiled_norms
            if norms is None:
                # Dense norms indexed by the snapshot's doc ints; docs in
                # the shared universe but not in this index (possible
                # when fusing two indexes with differing doc sets) get a
                # placeholder — no posting of this index references them.
                mapping = self.norms()
                norms = array(
                    "d", (mapping.get(doc_id, 1.0) for doc_id in snapshot.doc_ids)
                )
                self._compiled_norms = norms
            table = build_term_scores(
                postings, self.idf(term), self._config.k1, norms
            )
        self._compiled_terms[term] = table
        return table

    def term_contribution(self, term: str, tf: int, doc_id: str) -> float:
        """One term's BM25 contribution to one document's score.

        Computed from the same cached IDF and norm values as
        :meth:`score_weighted`, so sums over identical terms in identical
        order are bit-identical.
        """
        k1 = self._config.k1
        return self.idf(term) * (tf * (k1 + 1.0)) / (
            tf + k1 * self.norms()[doc_id]
        )

    def term_upper_bound(self, term: str) -> float:
        """Max possible BM25 contribution of ``term`` for any document.

        The tf factor ``tf*(k1+1)/(tf + k1*norm)`` is increasing in tf and
        bounded by ``k1+1`` as tf grows; the true max tf in the posting
        list with the most favourable length norm (b-dependent) gives a
        tight, safe bound.  Max-tf and min-doc-length come from the
        index's incrementally-maintained metadata — no posting-list scan.
        """
        max_tf = self._index.max_term_frequency(term)
        if max_tf == 0:
            return 0.0
        k1, b = self._config.k1, self._config.b
        avgdl = self._avg_doc_length()
        if avgdl == 0:
            min_norm = 1.0
        else:
            min_dl = self._index.min_doc_length(term)
            min_norm = min(1.0, 1.0 - b + b * min_dl / avgdl)
        return self.idf(term) * (max_tf * (k1 + 1.0)) / (
            max_tf + k1 * min_norm
        )

    def score(self, query_terms: Iterable[str]) -> dict[str, float]:
        """BM25 scores of all documents matching any query term.

        Repeated query terms contribute multiplicatively (standard bag
        semantics).
        """
        weights = Counter(query_terms)
        return self.score_weighted(weights)

    def score_weighted(self, term_weights: Mapping[str, float]) -> dict[str, float]:
        """BM25 with per-term query weights (used by query expansion)."""
        k1 = self._config.k1
        norms = self.norms()
        scores: dict[str, float] = {}
        for term, weight in term_weights.items():
            if weight == 0:
                continue
            postings = self._index.postings(term)
            if not postings:
                continue
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                contribution = idf * (tf * (k1 + 1.0)) / (
                    tf + k1 * norms[doc_id]
                )
                scores[doc_id] = scores.get(doc_id, 0.0) + weight * contribution
        return scores

    def score_document(self, query_terms: Iterable[str], doc_id: str) -> float:
        """BM25 score of one document (brute-force reference for tests)."""
        scores = self.score(query_terms)
        return scores.get(doc_id, 0.0)
