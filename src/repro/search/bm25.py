"""BM25 scoring (Robertson & Zaragoza), with Lucene's IDF formulation.

This is the term-weighting the paper uses for both channels: "The scoring
is based on BM25 with default settings provided by Lucene" (§VII-A4).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping

from repro.config import Bm25Config
from repro.search.inverted_index import InvertedIndex


class Bm25Scorer:
    """Scores queries against an :class:`InvertedIndex` with BM25."""

    def __init__(self, index: InvertedIndex, config: Bm25Config | None = None) -> None:
        self._index = index
        self._config = config or Bm25Config()

    @property
    def index(self) -> InvertedIndex:
        """The underlying index."""
        return self._index

    def idf(self, term: str) -> float:
        """Lucene's BM25 IDF: ``ln(1 + (N - df + 0.5) / (df + 0.5))``."""
        df = self._index.doc_frequency(term)
        n = self._index.num_docs
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score(self, query_terms: Iterable[str]) -> dict[str, float]:
        """BM25 scores of all documents matching any query term.

        Repeated query terms contribute multiplicatively (standard bag
        semantics).
        """
        weights = Counter(query_terms)
        return self.score_weighted(weights)

    def score_weighted(self, term_weights: Mapping[str, float]) -> dict[str, float]:
        """BM25 with per-term query weights (used by query expansion)."""
        k1 = self._config.k1
        b = self._config.b
        avgdl = self._index.avg_doc_length
        scores: dict[str, float] = {}
        for term, weight in term_weights.items():
            if weight == 0:
                continue
            postings = self._index.postings(term)
            if not postings:
                continue
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                dl = self._index.doc_length(doc_id)
                norm = 1.0 if avgdl == 0 else (1.0 - b + b * dl / avgdl)
                contribution = idf * (tf * (k1 + 1.0)) / (tf + k1 * norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + weight * contribution
        return scores

    def score_document(self, query_terms: Iterable[str], doc_id: str) -> float:
        """BM25 score of one document (brute-force reference for tests)."""
        scores = self.score(query_terms)
        return scores.get(doc_id, 0.0)
