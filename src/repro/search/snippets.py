"""Result snippet generation.

Search UIs show a query-biased extract of each hit.  The generator scores
each sentence of the document by analyzed-term overlap with the query
(IDF-weighted, so rare matched terms dominate) and returns the best
window of consecutive sentences with the matched terms highlighted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.analyzer import Analyzer
from repro.search.bm25 import Bm25Scorer
from repro.nlp.sentences import split_sentences
from repro.nlp.tokenizer import tokenize


@dataclass(frozen=True)
class Snippet:
    """A query-biased document extract.

    Attributes:
        text: the extracted (possibly highlighted) text.
        start: character offset of the extract in the source document.
        end: one past the last character.
        score: the extract's query-overlap score.
    """

    text: str
    start: int
    end: int
    score: float


class SnippetGenerator:
    """Generates query-biased snippets from document text."""

    def __init__(
        self,
        analyzer: Analyzer | None = None,
        scorer: Bm25Scorer | None = None,
        max_sentences: int = 2,
        highlight: tuple[str, str] | None = ("**", "**"),
    ) -> None:
        self._analyzer = analyzer or Analyzer()
        self._scorer = scorer  # supplies IDF when available
        self._max_sentences = max_sentences
        self._highlight = highlight

    def _term_weight(self, term: str) -> float:
        if self._scorer is None:
            return 1.0
        return max(self._scorer.idf(term), 0.0)

    def generate(self, document_text: str, query: str) -> Snippet:
        """The best snippet of ``document_text`` for ``query``.

        Falls back to the document's first sentence when nothing matches.
        """
        query_terms = set(self._analyzer.analyze(query))
        sentences = split_sentences(document_text)
        if not sentences:
            return Snippet(text="", start=0, end=0, score=0.0)
        sentence_scores = []
        for sentence in sentences:
            terms = self._analyzer.analyze(sentence.text)
            matched = set(terms) & query_terms
            sentence_scores.append(sum(self._term_weight(t) for t in matched))
        best_start = 0
        best_key = (-1.0, -1.0)
        best_score = 0.0
        window = min(self._max_sentences, len(sentences))
        for start in range(len(sentences) - window + 1):
            score = sum(sentence_scores[start : start + window])
            # Tie-break towards windows that *lead* with the matching
            # sentence, so matches are not trailed by unrelated context.
            key = (score, sentence_scores[start])
            if key > best_key:
                best_key = key
                best_score = score
                best_start = start
        first = sentences[best_start]
        last = sentences[best_start + window - 1]
        extract = document_text[first.start : last.end]
        if self._highlight and query_terms:
            extract = self._apply_highlight(extract, query_terms)
        return Snippet(
            text=extract,
            start=first.start,
            end=last.end,
            score=max(best_score, 0.0),
        )

    def _apply_highlight(self, text: str, query_terms: set[str]) -> str:
        """Wrap matched words with the highlight markers."""
        assert self._highlight is not None
        open_mark, close_mark = self._highlight
        pieces: list[str] = []
        cursor = 0
        for token in tokenize(text):
            if not token.is_word:
                continue
            analyzed = self._analyzer.analyze(token.text)
            if analyzed and analyzed[0] in query_terms:
                pieces.append(text[cursor : token.start])
                pieces.append(f"{open_mark}{text[token.start : token.end]}{close_mark}")
                cursor = token.end
        pieces.append(text[cursor:])
        return "".join(pieces)
