"""Inverted index over generic terms.

The same structure indexes text terms (Bag-Of-Word channel) and subgraph
embedding node ids (Bag-Of-Node channel, §VI) — the paper's "scoring
compatibility" design point.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.errors import DocumentNotIndexedError


class InvertedIndex:
    """term -> {doc_id: term frequency}, plus document statistics."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._total_length = 0

    def add_document(self, doc_id: str, terms: Iterable[str]) -> None:
        """Index ``doc_id``'s terms; re-adding a doc id replaces it."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        counts = Counter(terms)
        length = sum(counts.values())
        self._doc_lengths[doc_id] = length
        self._total_length += length
        for term, frequency in counts.items():
            self._postings.setdefault(term, {})[doc_id] = frequency

    def add_document_counts(self, doc_id: str, counts: dict[str, int]) -> None:
        """Index ``doc_id`` from precomputed term counts (persistence path)."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        length = sum(counts.values())
        self._doc_lengths[doc_id] = length
        self._total_length += length
        for term, frequency in counts.items():
            if frequency > 0:
                self._postings.setdefault(term, {})[doc_id] = int(frequency)

    def to_forward_map(self) -> dict[str, dict[str, int]]:
        """doc_id -> {term: tf} (the invertible forward representation)."""
        forward: dict[str, dict[str, int]] = {
            doc_id: {} for doc_id in self._doc_lengths
        }
        for term, postings in self._postings.items():
            for doc_id, tf in postings.items():
                forward[doc_id][term] = tf
        return forward

    def remove_document(self, doc_id: str) -> None:
        """Remove ``doc_id`` from the index."""
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            raise DocumentNotIndexedError(doc_id)
        self._total_length -= length
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(doc_id, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # ------------------------------------------------------------------
    def postings(self, term: str) -> dict[str, int]:
        """The posting map of ``term`` (empty when unseen)."""
        return self._postings.get(term, {})

    def doc_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def doc_length(self, doc_id: str) -> int:
        """Number of term occurrences indexed for ``doc_id``."""
        length = self._doc_lengths.get(doc_id)
        if length is None:
            raise DocumentNotIndexedError(doc_id)
        return length

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._doc_lengths

    @property
    def num_docs(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    @property
    def avg_doc_length(self) -> float:
        """Mean document length; 0.0 for an empty index."""
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def doc_ids(self) -> list[str]:
        """All indexed document ids."""
        return list(self._doc_lengths)

    def vocabulary(self) -> Iterable[str]:
        """All distinct terms."""
        return self._postings.keys()
