"""Inverted index over generic terms.

The same structure indexes text terms (Bag-Of-Word channel) and subgraph
embedding node ids (Bag-Of-Node channel, §VI) — the paper's "scoring
compatibility" design point.

Beyond the raw postings the index maintains the per-term metadata the
dynamic-pruning rankers need — doc-id-sorted posting arrays, the maximum
term frequency, and the minimum matching-document length — **incrementally**:
each structure is built lazily on first access and invalidated only for
the terms an ``add_document``/``remove_document`` actually touches, so
queries between mutations never re-sort or re-scan posting lists, and a
removal costs O(terms in the removed document), not O(vocabulary).
A monotonically increasing :attr:`version` lets scorers key their own
caches (IDF, length norms) on index mutations.
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import DocumentNotIndexedError


class InvertedIndex:
    """term -> {doc_id: term frequency}, plus document statistics."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._doc_terms: dict[str, tuple[str, ...]] = {}
        self._total_length = 0
        self._version = 0
        # Per-term metadata, filled lazily and invalidated per touched term.
        self._sorted_postings: dict[str, list[tuple[str, int]]] = {}
        self._max_tf: dict[str, int] = {}
        self._min_doc_length: dict[str, int] = {}
        # Version-keyed packed snapshot (repro.search.compiled_index).
        self._compiled_cache = None

    def add_document(self, doc_id: str, terms: Iterable[str]) -> None:
        """Index ``doc_id``'s terms; re-adding a doc id replaces it."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        counts = Counter(terms)
        self._ingest(doc_id, counts, sum(counts.values()))

    def add_document_counts(self, doc_id: str, counts: dict[str, int]) -> None:
        """Index ``doc_id`` from precomputed term counts (persistence path)."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        positive = {
            term: int(frequency)
            for term, frequency in counts.items()
            if frequency > 0
        }
        self._ingest(doc_id, positive, sum(counts.values()))

    def _ingest(
        self, doc_id: str, counts: Mapping[str, int], length: int
    ) -> None:
        self._doc_lengths[doc_id] = length
        self._doc_terms[doc_id] = tuple(counts)
        self._total_length += length
        for term, frequency in counts.items():
            self._postings.setdefault(term, {})[doc_id] = frequency
            self._note_posting_added(term, doc_id, frequency, length)
        self._version += 1

    def _note_posting_added(
        self, term: str, doc_id: str, frequency: int, length: int
    ) -> None:
        """Keep cached per-term metadata consistent with one new posting."""
        cached = self._sorted_postings.get(term)
        if cached is not None:
            insort(cached, (doc_id, frequency))
        max_tf = self._max_tf.get(term)
        if max_tf is not None and frequency > max_tf:
            self._max_tf[term] = frequency
        min_dl = self._min_doc_length.get(term)
        if min_dl is not None and length < min_dl:
            self._min_doc_length[term] = length

    def _note_term_shrunk(self, term: str) -> None:
        """Drop cached metadata that a removed posting may have defined."""
        self._sorted_postings.pop(term, None)
        self._max_tf.pop(term, None)
        self._min_doc_length.pop(term, None)

    def to_forward_map(self) -> dict[str, dict[str, int]]:
        """doc_id -> {term: tf} (the invertible forward representation)."""
        forward: dict[str, dict[str, int]] = {
            doc_id: {} for doc_id in self._doc_lengths
        }
        for term, postings in self._postings.items():
            for doc_id, tf in postings.items():
                forward[doc_id][term] = tf
        return forward

    def load_documents_sorted(
        self, items: Iterable[tuple[str, Mapping[str, int]]]
    ) -> None:
        """Bulk-ingest ``(doc_id, counts)`` pairs pre-sorted by doc id.

        The persistence fast path: because the documents arrive in
        ascending doc-id order (the v2 format writes them sorted), every
        per-term sorted-posting list is seeded directly by appending —
        loading never re-sorts a posting list.  Only valid on documents
        not already indexed; raises ``ValueError`` when the input order
        is not strictly ascending.
        """
        last: str | None = None
        sorted_postings = self._sorted_postings
        postings = self._postings
        for doc_id, counts in items:
            if last is not None and doc_id <= last:
                raise ValueError(
                    "load_documents_sorted requires strictly ascending "
                    f"doc ids; got {doc_id!r} after {last!r}"
                )
            last = doc_id
            if doc_id in self._doc_lengths:
                self.remove_document(doc_id)
            positive = {
                term: int(frequency)
                for term, frequency in counts.items()
                if frequency > 0
            }
            length = sum(counts.values())
            self._doc_lengths[doc_id] = length
            self._doc_terms[doc_id] = tuple(positive)
            self._total_length += length
            for term, frequency in positive.items():
                term_postings = postings.get(term)
                if term_postings is None:
                    postings[term] = {doc_id: frequency}
                    # First posting of the term: the singleton list IS
                    # the complete sorted posting list.
                    sorted_postings[term] = [(doc_id, frequency)]
                else:
                    term_postings[doc_id] = frequency
                    cached = sorted_postings.get(term)
                    if cached is not None:
                        if cached[-1][0] < doc_id:
                            cached.append((doc_id, frequency))
                        else:
                            # Pre-existing postings beyond doc_id
                            # (non-fresh index): ordered insert.
                            insort(cached, (doc_id, frequency))
                    # An uncached term stays uncached — sorted_postings()
                    # rebuilds it lazily from the full posting dict.
                max_tf = self._max_tf.get(term)
                if max_tf is not None and frequency > max_tf:
                    self._max_tf[term] = frequency
                min_dl = self._min_doc_length.get(term)
                if min_dl is not None and length < min_dl:
                    self._min_doc_length[term] = length
            self._version += 1

    def compiled(self):
        """The packed posting snapshot for this index version.

        Mirrors :meth:`KnowledgeGraph.compiled`: compiled lazily on
        first use after a mutation, then shared by every query until the
        next add/remove (see
        :class:`repro.search.compiled_index.CompiledPostings`).
        """
        cache = self._compiled_cache
        if cache is None or cache.version != self._version:
            from repro.search.compiled_index import CompiledPostings

            cache = CompiledPostings.from_index(self)
            self._compiled_cache = cache
        return cache

    def remove_document(self, doc_id: str) -> None:
        """Remove ``doc_id`` from the index.

        Costs O(terms in the document): only the document's own posting
        lists (tracked in the doc → terms forward map) are touched, never
        the full vocabulary.
        """
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            raise DocumentNotIndexedError(doc_id)
        self._total_length -= length
        for term in self._doc_terms.pop(doc_id, ()):
            postings = self._postings[term]
            del postings[doc_id]
            if not postings:
                del self._postings[term]
            self._note_term_shrunk(term)
        self._version += 1

    # ------------------------------------------------------------------
    def postings(self, term: str) -> dict[str, int]:
        """The posting map of ``term`` (empty when unseen)."""
        return self._postings.get(term, {})

    def sorted_postings(self, term: str) -> Sequence[tuple[str, int]]:
        """``(doc_id, tf)`` pairs of ``term`` in ascending doc-id order.

        Built once per term and reused across queries until a mutation
        touches the term — callers must not modify the returned list.
        """
        cached = self._sorted_postings.get(term)
        if cached is None:
            postings = self._postings.get(term)
            if not postings:
                return []
            cached = sorted(postings.items())
            self._sorted_postings[term] = cached
        return cached

    def max_term_frequency(self, term: str) -> int:
        """The largest tf in ``term``'s posting list (0 when unseen)."""
        cached = self._max_tf.get(term)
        if cached is None:
            postings = self._postings.get(term)
            if not postings:
                return 0
            cached = max(postings.values())
            self._max_tf[term] = cached
        return cached

    def min_doc_length(self, term: str) -> int:
        """The shortest document containing ``term`` (0 when unseen)."""
        cached = self._min_doc_length.get(term)
        if cached is None:
            postings = self._postings.get(term)
            if not postings:
                return 0
            cached = min(self._doc_lengths[doc_id] for doc_id in postings)
            self._min_doc_length[term] = cached
        return cached

    def doc_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def doc_length(self, doc_id: str) -> int:
        """Number of term occurrences indexed for ``doc_id``."""
        length = self._doc_lengths.get(doc_id)
        if length is None:
            raise DocumentNotIndexedError(doc_id)
        return length

    def doc_lengths(self) -> Mapping[str, int]:
        """doc_id -> length for every indexed document (do not mutate)."""
        return self._doc_lengths

    def doc_terms(self, doc_id: str) -> tuple[str, ...]:
        """The distinct terms indexed for ``doc_id`` (forward map entry)."""
        terms = self._doc_terms.get(doc_id)
        if terms is None:
            raise DocumentNotIndexedError(doc_id)
        return terms

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._doc_lengths

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every add/remove.

        Scorers key derived caches (IDF, per-document length norms) on
        this, so cached values are reused across queries and recomputed
        only after the index actually changed.
        """
        return self._version

    @property
    def num_docs(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    @property
    def avg_doc_length(self) -> float:
        """Mean document length; 0.0 for an empty index."""
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def doc_ids(self) -> list[str]:
        """All indexed document ids."""
        return list(self._doc_lengths)

    def vocabulary(self) -> Iterable[str]:
        """All distinct terms."""
        return self._postings.keys()
