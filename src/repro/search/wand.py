"""MaxScore top-k retrieval with upper-bound pruning.

The paper's NS component "employ[s] existing top-k ranking algorithms
[49], [38]" (threshold-algorithm family) for query processing.  This
module implements the MaxScore variant of document-at-a-time dynamic
pruning for BM25: terms are ordered by their maximum possible score
contribution, and once a document cannot beat the current k-th score even
with every remaining term, its scoring is skipped.

Results are *identical* to exhaustive scoring (property-tested); the win
is skipped work on large posting lists.  All per-term inputs — sorted
posting arrays, max tf, min matching doc length, IDF, length norms —
come from the incrementally-maintained index/scorer caches, so queries
never re-sort or re-scan posting lists (see
:meth:`InvertedIndex.sorted_postings` and
:meth:`Bm25Scorer.term_upper_bound`).

For the engine's fused two-channel hot path see
:class:`repro.search.pruned.FusedRanker`, which runs the same
document-at-a-time loop over both indexes at once.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.config import Bm25Config
from repro.search.bm25 import Bm25Scorer
from repro.search.inverted_index import InvertedIndex
from repro.search.order import _ReverseStr


class _TermCursor:
    """A sorted posting-list cursor for one query term."""

    __slots__ = ("term", "weight", "upper_bound", "postings", "position")

    def __init__(
        self,
        term: str,
        weight: float,
        upper_bound: float,
        postings: Sequence[tuple[str, int]],
    ) -> None:
        self.term = term
        self.weight = weight
        self.upper_bound = upper_bound
        self.postings = postings
        self.position = 0

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.postings)

    @property
    def current_doc(self) -> str:
        return self.postings[self.position][0]

    @property
    def current_tf(self) -> int:
        return self.postings[self.position][1]

    def advance_to(self, doc_id: str) -> None:
        """Move the cursor to the first posting with doc >= doc_id."""
        postings = self.postings
        lo, hi = self.position, len(postings)
        while lo < hi:
            mid = (lo + hi) // 2
            if postings[mid][0] < doc_id:
                lo = mid + 1
            else:
                hi = mid
        self.position = lo


class MaxScoreRanker:
    """Top-k BM25 ranking with MaxScore pruning.

    Produces exactly the same ranked list as scoring every matching
    document (ties broken by ascending doc id), but skips documents that
    provably cannot enter the top k.
    """

    def __init__(self, index: InvertedIndex, config: Bm25Config | None = None) -> None:
        self._index = index
        self._config = config or Bm25Config()
        self._scorer = Bm25Scorer(index, self._config)

    @property
    def pruned_docs(self) -> int:
        """Documents skipped by the bound check in the last query."""
        return self._last_pruned

    _last_pruned: int = 0

    # ------------------------------------------------------------------
    def top_k(
        self, query_terms: Sequence[str], k: int
    ) -> list[tuple[str, float]]:
        """The top-``k`` documents for ``query_terms`` under BM25."""
        self._last_pruned = 0
        if k <= 0 or not query_terms:
            return []
        weights: dict[str, float] = {}
        for term in query_terms:
            weights[term] = weights.get(term, 0.0) + 1.0
        scorer = self._scorer
        cursors = []
        for term, weight in weights.items():
            postings = self._index.sorted_postings(term)
            if not postings:
                continue
            cursors.append(
                _TermCursor(
                    term,
                    weight,
                    weight * scorer.term_upper_bound(term),
                    postings,
                )
            )
        if not cursors:
            return []
        # Full scoring must add contributions in the same order the
        # exhaustive scorer does (query first-appearance order): float
        # addition is not associative, and a different order can move a
        # near-tie by an ulp and flip the ranking.
        scoring_order = list(cursors)
        # Ascending by upper bound: a suffix sum tells us how much the
        # cheapest terms can still add.
        cursors.sort(key=lambda c: c.upper_bound)
        suffix_bounds = [0.0] * (len(cursors) + 1)
        for i in range(len(cursors) - 1, -1, -1):
            suffix_bounds[i] = suffix_bounds[i + 1] + cursors[i].upper_bound

        # heap of (score, neg-docid-order proxy): python heap is min-heap;
        # ties must favour the *smaller* doc id, so compare (score, rev).
        heap: list[tuple[float, _ReverseStr]] = []
        threshold = float("-inf")

        while True:
            # The next candidate document: the smallest current doc id.
            candidate: str | None = None
            for cursor in cursors:
                if not cursor.exhausted:
                    doc = cursor.current_doc
                    if candidate is None or doc < candidate:
                        candidate = doc
            if candidate is None:
                break
            # Which terms can contribute, and what is the total bound?
            bound = 0.0
            for cursor in cursors:
                if not cursor.exhausted and cursor.current_doc == candidate:
                    bound += cursor.upper_bound
            # Strict: at bound == threshold the document could still tie
            # the k-th score with a smaller doc id and win the tie-break.
            if len(heap) == k and bound < threshold:
                # Provably outside the top-k: skip scoring entirely.
                self._last_pruned += 1
                for cursor in cursors:
                    if not cursor.exhausted and cursor.current_doc == candidate:
                        cursor.position += 1
                continue
            score = 0.0
            for cursor in scoring_order:
                if not cursor.exhausted and cursor.current_doc == candidate:
                    score += cursor.weight * scorer.term_contribution(
                        cursor.term, cursor.current_tf, candidate
                    )
                    cursor.position += 1
            entry = (score, _ReverseStr(candidate))
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
            if len(heap) == k:
                threshold = heap[0][0]
        ranked = sorted(
            ((doc.value, score) for score, doc in heap),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked
