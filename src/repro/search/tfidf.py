"""TF-IDF cosine scoring (the classic Vector Space Model).

An alternative scorer to BM25 — the paper notes NewsLink is "based on the
typical term-weighting (e.g. TF-IDF) and scoring functions (e.g. cosine
similarity) that are widely used in VSM".
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.search.inverted_index import InvertedIndex


class TfIdfScorer:
    """Cosine similarity between ltc-weighted query and document vectors."""

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index
        self._doc_norms: dict[str, float] | None = None

    def idf(self, term: str) -> float:
        """Smoothed IDF: ``ln(1 + N / (df + 1))``."""
        df = self._index.doc_frequency(term)
        return math.log(1.0 + self._index.num_docs / (df + 1.0))

    def _ensure_norms(self) -> dict[str, float]:
        if self._doc_norms is None:
            sums: dict[str, float] = {doc_id: 0.0 for doc_id in self._index.doc_ids()}
            for term in self._index.vocabulary():
                idf = self.idf(term)
                for doc_id, tf in self._index.postings(term).items():
                    weight = (1.0 + math.log(tf)) * idf
                    sums[doc_id] += weight * weight
            self._doc_norms = {
                doc_id: math.sqrt(total) if total > 0 else 1.0
                for doc_id, total in sums.items()
            }
        return self._doc_norms

    def invalidate(self) -> None:
        """Drop cached norms after the index changed."""
        self._doc_norms = None

    def score(self, query_terms: Iterable[str]) -> dict[str, float]:
        """Cosine scores of all documents matching any query term."""
        counts = Counter(query_terms)
        if not counts:
            return {}
        query_weights = {
            term: (1.0 + math.log(tf)) * self.idf(term)
            for term, tf in counts.items()
        }
        query_norm = math.sqrt(sum(w * w for w in query_weights.values())) or 1.0
        norms = self._ensure_norms()
        scores: dict[str, float] = {}
        for term, query_weight in query_weights.items():
            idf = self.idf(term)
            for doc_id, tf in self._index.postings(term).items():
                doc_weight = (1.0 + math.log(tf)) * idf
                scores[doc_id] = scores.get(doc_id, 0.0) + query_weight * doc_weight
        return {
            doc_id: value / (query_norm * norms[doc_id])
            for doc_id, value in scores.items()
        }
