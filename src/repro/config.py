"""Frozen configuration dataclasses for every component of the reproduction.

Each component takes an explicit config object so experiments are fully
parameterized and reproducible.  Validation happens eagerly in
``__post_init__`` — a bad parameter fails at construction, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class LcagConfig:
    """Parameters for the G* (Lowest Common Ancestor Graph) search.

    Attributes:
        max_pops: budget on frontier pops before the search gives up
            (the paper's ``while Not Timeout`` guard).
        max_depth: optional cap on path length considered during expansion;
            ``None`` means unbounded.
        collect_all_min_depth: when True (paper behaviour) the search keeps
            expanding until every candidate whose depth ties the first
            candidate has been collected, which is required for exact
            compactness sorting.
        single_paths: ablation switch — keep only ONE shortest path per
            label instead of the full shortest-path DAG, removing the
            "width"/coverage property while keeping the LCAG root choice.
        backend: search execution strategy.  ``"compiled"`` (default)
            runs the integer-id fast path over the CSR graph snapshot
            (:mod:`repro.core.fast_search`) — bit-identical results,
            one unified heap instead of m scanned frontiers;
            ``"reference"`` runs the original object-graph path
            (:class:`repro.core.frontier.FrontierPool`), kept as the
            differential oracle.
    """

    max_pops: int = 200_000
    max_depth: float | None = None
    collect_all_min_depth: bool = True
    single_paths: bool = False
    backend: str = "compiled"

    def __post_init__(self) -> None:
        _require(self.max_pops > 0, "max_pops must be positive")
        if self.max_depth is not None:
            _require(self.max_depth > 0, "max_depth must be positive when set")
        _require(
            self.backend in ("compiled", "reference"),
            "backend must be 'compiled' or 'reference'",
        )


@dataclass(frozen=True)
class TreeEmbConfig:
    """Parameters for the TreeEmb (GST-approximation) baseline embedder.

    ``backend`` mirrors :attr:`LcagConfig.backend`: the GST search shares
    the frontier machinery, so it gets the same compiled fast path.
    """

    max_pops: int = 200_000
    max_depth: float | None = None
    backend: str = "compiled"

    def __post_init__(self) -> None:
        _require(self.max_pops > 0, "max_pops must be positive")
        _require(
            self.backend in ("compiled", "reference"),
            "backend must be 'compiled' or 'reference'",
        )


@dataclass(frozen=True)
class NerConfig:
    """Gazetteer NER configuration (spaCy substitute).

    Attributes:
        max_gram: longest multi-word entity span to consider.
        require_capitalized: only propose spans whose tokens are capitalized
            (standard newswire NER heuristic).
        allowed_types: entity types kept, mirroring the paper's filter
            (all types except numbers/quantities).  ``OTHER`` is allowed by
            default so untyped nodes of imported KGs still match.
    """

    max_gram: int = 4
    require_capitalized: bool = True
    allowed_types: tuple[str, ...] = (
        "PERSON",
        "NORP",
        "FAC",
        "ORG",
        "GPE",
        "LOC",
        "PRODUCT",
        "EVENT",
        "WORK_OF_ART",
        "LAW",
        "LANGUAGE",
        "OTHER",
    )

    def __post_init__(self) -> None:
        _require(self.max_gram >= 1, "max_gram must be >= 1")
        _require(len(self.allowed_types) > 0, "allowed_types must be non-empty")


@dataclass(frozen=True)
class Bm25Config:
    """BM25 scoring parameters (Lucene 7.x defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        _require(self.k1 >= 0, "k1 must be non-negative")
        _require(0.0 <= self.b <= 1.0, "b must lie in [0, 1]")


@dataclass(frozen=True)
class FusionConfig:
    """Equation 3 score fusion: F = (1-beta)*BOW + beta*BON + gamma*CTX.

    Attributes:
        beta: weight on the Bag-Of-Node (subgraph embedding) channel.
        gamma: weight on the optional personalization/session context
            channel (profile or session subgraph nodes scored on the node
            index).  ``0.0`` — the default — disables the channel entirely:
            no context cursors are built and fusion is bit-identical to the
            two-channel path.
        normalize: per-query max-normalize each channel before combining.
            Off by default: the paper combines raw BM25 scores, and raw
            magnitudes carry useful confidence — a query with a weak
            subgraph embedding naturally contributes little BON mass
            (see benchmarks/bench_ablation_fusion.py).
        candidate_pool: number of top candidates taken from each channel's
            inverted index before fusion (the paper retrieves candidates
            from both indexes).
    """

    beta: float = 0.2
    gamma: float = 0.0
    normalize: bool = False
    candidate_pool: int = 200

    def __post_init__(self) -> None:
        _require(0.0 <= self.beta <= 1.0, "beta must lie in [0, 1]")
        _require(0.0 <= self.gamma <= 1.0, "gamma must lie in [0, 1]")
        _require(self.candidate_pool > 0, "candidate_pool must be positive")


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of the end-to-end NewsLink engine.

    Attributes:
        disambiguate: filter ambiguous label candidates by group coherence
            before embedding (see :mod:`repro.nlp.disambiguation`).
        disambiguation_distance: coherence radius for that filter.
        workers: processes used by ``index_corpus`` (0 = one per CPU core;
            1 = the serial reference path).  The parallel path is
            bit-identical to serial — see :mod:`repro.parallel`.
        parallel_nlp: also fan the per-document NLP stage across workers
            (only relevant when ``workers != 1``).
        parallel_chunk_size: tasks dispatched per worker round-trip —
            amortizes IPC/pickling overhead.
        query_cache_size: entries of the query-embedding LRU shared by
            ``search`` and the ``explain*`` methods (0 disables), so
            explaining k results of a query costs one embedding, not k+1.
        ranking: query-serving strategy.  ``"auto"`` (default) asks the
            cost-based planner (:class:`repro.search.planner.QueryPlanner`)
            to pick per query between the other two strategies from
            posting statistics — all three return identical results.
            ``"pruned"`` always serves ``search`` with fused two-channel
            MaxScore dynamic pruning
            (:class:`repro.search.pruned.FusedRanker`) — sublinear in
            matching documents; ``"exhaustive"`` scores every matching
            document on both channels (the reference path).  Pruned and
            auto ranking fall back to exhaustive when
            ``fusion.normalize`` is on (per-query max-normalization
            needs full score maps).
        pruned_backend: posting layout the pruned path runs on.
            ``"compiled"`` (default) walks packed int/float arrays with
            block-max skipping
            (:mod:`repro.search.compiled_index`); ``"reference"`` walks
            the dict-backed postings (the differential oracle).  Both
            produce bit-identical ranked output.
        deadline_ms: per-query wall-clock budget for ``search`` (None =
            unbounded, the default).  When the budget expires during
            query embedding, the embedding is abandoned and the query is
            served from the text (BOW) channel only, flagged
            ``degraded`` — search never raises for a deadline.  A hit in
            the query-embedding LRU intentionally bypasses the deadline
            check: the cached path is cheap, so an already-expired
            budget still yields full-quality (non-degraded) results.
            See ``docs/robustness.md``.
        index_format: on-disk format ``save_index`` writes.  ``"v3"``
            (default) is the zero-copy binary container — delta-encoded
            packed postings plus embedding/text arenas in CRC-checked
            sections ``load_index`` can mmap directly
            (:mod:`repro.search.storage`); ``"v2"`` is the streaming
            JSON format kept for interoperability.  Both load back
            transparently (detected by magic bytes).
        mmap: default load mode for ``load_index`` on v3 files.  True
            (default) maps the file with ``mmap.mmap`` and serves
            queries from zero-copy views — near-instant loads, and
            forked shard workers share the pages copy-on-write.  False
            hydrates heap structures (the v2-style object graph).
            Gzipped or legacy (v1/v2) files always heap-load, counted
            by ``newslink_index_load_fallback_total``.
        metrics_enabled: publish metrics and per-query traces into the
            observability layer (:mod:`repro.obs`).  On by default;
            when off the engine binds to a permanently disabled
            registry and every instrumentation point short-circuits to
            a single branch (see ``benchmarks/bench_obs_overhead.py``).
        trace_capacity: completed query traces retained by the engine's
            tracer ring buffer (0 disables trace retention while
            keeping metrics).
    """

    lcag: LcagConfig = field(default_factory=LcagConfig)
    ner: NerConfig = field(default_factory=NerConfig)
    bm25: Bm25Config = field(default_factory=Bm25Config)
    fusion: FusionConfig = field(default_factory=FusionConfig)
    use_tree_embedder: bool = False
    tree_emb: TreeEmbConfig = field(default_factory=TreeEmbConfig)
    disambiguate: bool = False
    disambiguation_distance: float = 3.0
    cache_embeddings: bool = False
    cache_size: int = 10_000
    segment_window: int = 1
    workers: int = 1
    parallel_nlp: bool = True
    parallel_chunk_size: int = 32
    query_cache_size: int = 64
    ranking: str = "auto"
    pruned_backend: str = "compiled"
    index_format: str = "v3"
    mmap: bool = True
    deadline_ms: float | None = None
    metrics_enabled: bool = True
    trace_capacity: int = 64

    def __post_init__(self) -> None:
        _require(
            self.disambiguation_distance > 0,
            "disambiguation_distance must be positive",
        )
        _require(self.cache_size > 0, "cache_size must be positive")
        _require(self.segment_window >= 1, "segment_window must be >= 1")
        _require(self.workers >= 0, "workers must be >= 0 (0 = auto)")
        _require(
            self.parallel_chunk_size >= 1, "parallel_chunk_size must be >= 1"
        )
        _require(self.query_cache_size >= 0, "query_cache_size must be >= 0")
        _require(
            self.ranking in ("auto", "pruned", "exhaustive"),
            "ranking must be 'auto', 'pruned' or 'exhaustive'",
        )
        _require(
            self.pruned_backend in ("compiled", "reference"),
            "pruned_backend must be 'compiled' or 'reference'",
        )
        _require(
            self.index_format in ("v2", "v3"),
            "index_format must be 'v2' or 'v3'",
        )
        if self.deadline_ms is not None:
            _require(self.deadline_ms > 0, "deadline_ms must be positive when set")
        _require(self.trace_capacity >= 0, "trace_capacity must be >= 0")


@dataclass(frozen=True)
class ServingConfig:
    """Sharded serving: document-partitioned shards behind a coordinator.

    Attributes:
        num_shards: document partitions, each a full engine (inverted
            indexes + embeddings + segment store) over its slice of the
            corpus, scored with corpus-wide BM25 statistics so the
            scatter-gather merge is bit-identical to one whole-corpus
            engine.
        workers_per_shard: forked worker processes serving each shard.
            Workers of one shard share the shard engine's pages
            copy-on-write (the planner precompiles every snapshot
            before the fork).
        max_inflight: queries allowed in the serving stage at once
            (0 = ``workers_per_shard``, the natural capacity: each
            in-flight query leases one worker per shard).
        max_queue: queries allowed to *wait* for a slot beyond
            ``max_inflight``; arrivals past that are shed immediately
            with a 429 instead of queueing unboundedly.  ``None``
            disables shedding entirely (unbounded queueing — the
            overload benchmark's control arm).
        shed_on_deadline: also shed queued queries whose deadline is
            (or would be) expired before a slot frees — they could only
            be served late, so rejecting early preserves capacity for
            queries that can still meet their budget.
        gather_timeout_ms: per-query budget for the scatter-gather
            round-trip.  A shard that misses it is marked failed for
            the query (results come back ``partial``) and its leased
            worker is replaced — a hung or killed worker never hangs
            the coordinator.
        transport: ``"process"`` (forked workers over pipes, the real
            deployment shape) or ``"inline"`` (direct in-process calls;
            the differential-test harness and a zero-IPC single-process
            mode).
    """

    num_shards: int = 2
    workers_per_shard: int = 1
    max_inflight: int = 0
    max_queue: int | None = 16
    shed_on_deadline: bool = True
    gather_timeout_ms: float = 10_000.0
    transport: str = "process"

    def __post_init__(self) -> None:
        _require(self.num_shards >= 1, "num_shards must be >= 1")
        _require(self.workers_per_shard >= 1, "workers_per_shard must be >= 1")
        _require(self.max_inflight >= 0, "max_inflight must be >= 0 (0 = auto)")
        if self.max_queue is not None:
            _require(self.max_queue >= 0, "max_queue must be >= 0 when set")
        _require(
            self.gather_timeout_ms > 0, "gather_timeout_ms must be positive"
        )
        _require(
            self.transport in ("process", "inline"),
            "transport must be 'process' or 'inline'",
        )

    @property
    def effective_max_inflight(self) -> int:
        """The resolved in-flight cap (0 means one per shard worker)."""
        return self.max_inflight or self.workers_per_shard


@dataclass(frozen=True)
class IngestConfig:
    """Streaming-ingestion pipeline parameters (see ``docs/ingestion.md``).

    Attributes:
        batch_size: maximum events fetched from one source per dispatch
            round — bounds how long a bursty source can monopolize the
            loop before the others get a turn.
        sync_every: WAL appends per ``fsync`` (durability batching).
        segment_bytes: WAL segment size before rotation.
        checkpoint_every: applied events between automatic compactions
            (snapshot + manifest + WAL truncation); 0 disables automatic
            checkpoints (callers checkpoint explicitly / on close).
        apply_retries: bounded retries for a failing delta apply before
            the event is quarantined to the dead-letter queue.
        failure_threshold: consecutive fetch failures that trip a
            source's circuit breaker open.
        breaker_reset_after: seconds an open breaker waits before
            letting one half-open probe through.
        fetch_attempts: retry attempts per fetch (inside one dispatch
            round; failures after that count against the breaker).
        fetch_base_delay: initial fetch retry backoff, in seconds.
        fetch_max_delay: cap on any single fetch retry sleep.
        fetch_max_elapsed: total fetch retry budget per round in
            seconds (None = attempts alone bound the retrying).
        retry_seed: seed for the decorrelated-jitter retry schedule, so
            runs are reproducible.
        freshness_window: ingest→searchable latency samples retained
            for the ``/stats`` freshness percentiles.
    """

    batch_size: int = 8
    sync_every: int = 16
    segment_bytes: int = 1 << 20
    checkpoint_every: int = 256
    apply_retries: int = 2
    failure_threshold: int = 3
    breaker_reset_after: float = 5.0
    fetch_attempts: int = 3
    fetch_base_delay: float = 0.02
    fetch_max_delay: float = 0.5
    fetch_max_elapsed: float | None = 5.0
    retry_seed: int = 0
    freshness_window: int = 4096

    def __post_init__(self) -> None:
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.sync_every >= 1, "sync_every must be >= 1")
        _require(self.segment_bytes >= 64, "segment_bytes must be >= 64")
        _require(self.checkpoint_every >= 0, "checkpoint_every must be >= 0")
        _require(self.apply_retries >= 0, "apply_retries must be >= 0")
        _require(self.failure_threshold >= 1, "failure_threshold must be >= 1")
        _require(
            self.breaker_reset_after > 0, "breaker_reset_after must be positive"
        )
        _require(self.fetch_attempts >= 1, "fetch_attempts must be >= 1")
        _require(self.fetch_base_delay > 0, "fetch_base_delay must be positive")
        _require(self.fetch_max_delay > 0, "fetch_max_delay must be positive")
        if self.fetch_max_elapsed is not None:
            _require(
                self.fetch_max_elapsed > 0,
                "fetch_max_elapsed must be positive when set",
            )
        _require(self.freshness_window >= 1, "freshness_window must be >= 1")


@dataclass(frozen=True)
class Doc2VecConfig:
    """Doc2vec training hyperparameters (Gensim substitute).

    Attributes:
        mode: ``"dbow"`` (PV-DBOW: the doc vector predicts each word) or
            ``"dm"`` (PV-DM: doc vector averaged with context word vectors
            predicts the center word — Gensim's default).
    """

    dim: int = 64
    epochs: int = 12
    negative: int = 5
    learning_rate: float = 0.05
    min_learning_rate: float = 0.0005
    min_count: int = 2
    window: int = 8
    infer_epochs: int = 25
    mode: str = "dbow"
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.dim > 0, "dim must be positive")
        _require(self.epochs > 0, "epochs must be positive")
        _require(self.negative >= 1, "negative must be >= 1")
        _require(self.learning_rate > 0, "learning_rate must be positive")
        _require(self.min_count >= 1, "min_count must be >= 1")
        _require(self.mode in ("dbow", "dm"), "mode must be 'dbow' or 'dm'")
        _require(self.window >= 1, "window must be >= 1")


@dataclass(frozen=True)
class SbertConfig:
    """Frozen hash-kernel sentence encoder (SBERT substitute).

    The encoder is deterministic ("pretrained"): word vectors come from a
    seeded hash kernel, pooled with SIF weighting and first-component
    removal, mimicking a frozen dense semantic encoder.
    """

    dim: int = 128
    sif_a: float = 1e-3
    remove_components: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.dim > 0, "dim must be positive")
        _require(self.sif_a > 0, "sif_a must be positive")
        _require(self.remove_components >= 0, "remove_components must be >= 0")


@dataclass(frozen=True)
class LdaConfig:
    """Collapsed-Gibbs LDA hyperparameters (PLDA substitute)."""

    num_topics: int = 32
    alpha: float = 0.1
    beta: float = 0.01
    iterations: int = 60
    infer_iterations: int = 30
    min_count: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.num_topics >= 2, "num_topics must be >= 2")
        _require(self.alpha > 0 and self.beta > 0, "alpha and beta must be positive")
        _require(self.iterations > 0, "iterations must be positive")


@dataclass(frozen=True)
class QeprfConfig:
    """Query expansion with KG descriptions + pseudo-relevance feedback."""

    expansion_terms: int = 10
    prf_docs: int = 10
    prf_terms: int = 10
    original_weight: float = 1.0
    description_weight: float = 0.35
    prf_weight: float = 0.5

    def __post_init__(self) -> None:
        _require(self.expansion_terms >= 0, "expansion_terms must be >= 0")
        _require(self.prf_docs >= 1, "prf_docs must be >= 1")
        _require(self.prf_terms >= 0, "prf_terms must be >= 0")


@dataclass(frozen=True)
class FastTextConfig:
    """Skip-gram + subword judge embedding (FastText substitute)."""

    dim: int = 64
    epochs: int = 8
    negative: int = 5
    window: int = 5
    min_count: int = 2
    min_ngram: int = 3
    max_ngram: int = 5
    bucket: int = 50_000
    learning_rate: float = 0.05
    subsample_threshold: float = 1e-3
    sif_pooling: bool = True
    sif_a: float = 1e-3
    remove_components: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.dim > 0, "dim must be positive")
        _require(self.min_ngram >= 1, "min_ngram must be >= 1")
        _require(self.max_ngram >= self.min_ngram, "max_ngram must be >= min_ngram")
        _require(self.bucket > 0, "bucket must be positive")


@dataclass(frozen=True)
class WorldConfig:
    """Synthetic Wikidata-like world generator parameters.

    The generated world plants the structural motifs NewsLink exploits:
    geographic containment hierarchies, organizations with members, events
    with participants, and multiple parallel relationship paths.
    """

    num_countries: int = 6
    provinces_per_country: int = 4
    cities_per_province: int = 4
    num_organizations: int = 24
    num_persons: int = 80
    num_events: int = 16
    participants_per_event: int = 6
    extra_edges: int = 60
    alias_probability: float = 0.45
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.num_countries >= 1, "num_countries must be >= 1")
        _require(self.num_events >= 1, "num_events must be >= 1")
        _require(
            0.0 <= self.alias_probability <= 1.0,
            "alias_probability must lie in [0, 1]",
        )


@dataclass(frozen=True)
class NewsConfig:
    """Synthetic news corpus generator parameters (CNN/Kaggle substitute).

    Attributes:
        num_documents: corpus size.
        sentences_per_doc: (min, max) sentences per document.
        entities_per_sentence: (min, max) entity mentions per sentence.
        offtopic_probability: chance a sentence draws filler vocabulary only.
        entity_dropout: probability an on-topic entity is *not* mentioned in
            a given document — this creates the vocabulary-mismatch setting
            the paper's robustness claim rests on.
        noise_doc_fraction: fraction of documents about no planted topic.
        unknown_entity_probability: chance an entity slot is filled with a
            name that exists in no KG node.  These mentions are identified
            by NER but unmatched, which is what keeps the Table V entity
            matching ratio below 100% (the paper reports ~96-98%).
    """

    num_documents: int = 300
    sentences_per_doc: tuple[int, int] = (4, 9)
    entities_per_sentence: tuple[int, int] = (1, 4)
    offtopic_probability: float = 0.15
    entity_dropout: float = 0.45
    noise_doc_fraction: float = 0.1
    unknown_entity_probability: float = 0.04
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.num_documents >= 1, "num_documents must be >= 1")
        lo, hi = self.sentences_per_doc
        _require(1 <= lo <= hi, "sentences_per_doc must satisfy 1 <= lo <= hi")
        lo, hi = self.entities_per_sentence
        _require(0 <= lo <= hi, "entities_per_sentence must satisfy 0 <= lo <= hi")
        _require(0.0 <= self.entity_dropout < 1.0, "entity_dropout must lie in [0, 1)")
        _require(
            0.0 <= self.noise_doc_fraction < 1.0,
            "noise_doc_fraction must lie in [0, 1)",
        )
        _require(
            0.0 <= self.unknown_entity_probability < 1.0,
            "unknown_entity_probability must lie in [0, 1)",
        )


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation-task configuration (§VII-B)."""

    top_ks_sim: tuple[int, ...] = (5, 10, 20)
    top_ks_hit: tuple[int, ...] = (1, 5)
    test_fraction: float = 0.1
    validation_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        _require(len(self.top_ks_sim) > 0, "top_ks_sim must be non-empty")
        _require(len(self.top_ks_hit) > 0, "top_ks_hit must be non-empty")
        _require(
            0.0 < self.test_fraction < 1.0,
            "test_fraction must lie in (0, 1)",
        )
