"""Core KG value types: nodes, edges and entity types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EntityType(str, enum.Enum):
    """Entity types recognized during NER (paper §IV).

    The paper keeps "all entity types except those representing numbers or
    quantities"; the members below are the kept types plus ``OTHER`` for
    untyped KG nodes (e.g. intermediate relationship nodes).
    """

    PERSON = "PERSON"
    NORP = "NORP"  # nationality, religious or political group
    FAC = "FAC"  # facility
    ORG = "ORG"
    GPE = "GPE"  # geo-political entity
    LOC = "LOC"
    PRODUCT = "PRODUCT"
    EVENT = "EVENT"
    WORK_OF_ART = "WORK_OF_ART"
    LAW = "LAW"
    LANGUAGE = "LANGUAGE"
    OTHER = "OTHER"

    @classmethod
    def from_string(cls, value: str) -> "EntityType":
        """Parse ``value`` case-insensitively, defaulting to ``OTHER``."""
        try:
            return cls(value.upper())
        except ValueError:
            return cls.OTHER


@dataclass(frozen=True)
class Node:
    """A knowledge-graph entity node.

    Attributes:
        node_id: unique id, e.g. ``"Q42"`` in Wikidata style.
        label: canonical (preferred) label.
        entity_type: semantic type used by the NER filter.
        aliases: alternative surface forms that also match this node.
        description: short textual description (QEPRF expands queries with
            these, mirroring Xiong & Callan's use of Freebase descriptions).
    """

    node_id: str
    label: str
    entity_type: EntityType = EntityType.OTHER
    aliases: tuple[str, ...] = ()
    description: str = ""

    def surface_forms(self) -> tuple[str, ...]:
        """All strings that exact-match this node: label plus aliases."""
        return (self.label, *self.aliases)


@dataclass(frozen=True)
class Edge:
    """A directed, typed, weighted relationship edge.

    Attributes:
        source: source node id.
        target: target node id.
        relation: relation name, e.g. ``"located_in"``.
        weight: positive traversal cost (the paper's examples use 1).
    """

    source: str
    target: str
    relation: str
    weight: float = 1.0

    def reversed(self) -> "Edge":
        """The reverse-orientation edge with the same relation and weight."""
        return Edge(self.target, self.source, self.relation, self.weight)

    def key(self) -> tuple[str, str, str]:
        """Identity key ignoring weight (used for de-duplication)."""
        return (self.source, self.target, self.relation)


# Directed edge as stored in subgraph embeddings: orientation is *towards*
# the common-ancestor root; ``forward`` records whether the traversal used
# the original KG direction or the added reverse direction.
@dataclass(frozen=True)
class OrientedEdge:
    """An edge of a subgraph embedding, oriented towards the root.

    Attributes:
        source: tail node id (closer to the entity leaf).
        target: head node id (closer to the root).
        relation: the original KG relation name.
        forward: True if the KG stores ``source -> target`` with this
            relation; False if the traversal used the reverse direction
            (the KG stores ``target -> source``).
        weight: traversal cost of the edge.
    """

    source: str
    target: str
    relation: str
    forward: bool = True
    weight: float = 1.0

    def as_kg_edge(self) -> Edge:
        """Recover the original KG-direction :class:`Edge`."""
        if self.forward:
            return Edge(self.source, self.target, self.relation, self.weight)
        return Edge(self.target, self.source, self.relation, self.weight)
