"""Knowledge-graph serialization.

Two interchange formats are supported:

* **JSON** — a single document with ``nodes`` and ``edges`` arrays; lossless
  (keeps aliases, descriptions, entity types).
* **TSV** — a triples file ``source<TAB>relation<TAB>target[<TAB>weight]``
  plus an optional nodes file; the common shape of public KG dumps.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import DataError
from repro.kg.graph import KnowledgeGraph
from repro.kg.types import Edge, EntityType, Node


def graph_to_dict(graph: KnowledgeGraph) -> dict:
    """A JSON-serializable representation of ``graph``."""
    return {
        "nodes": [
            {
                "id": node.node_id,
                "label": node.label,
                "type": node.entity_type.value,
                "aliases": list(node.aliases),
                "description": node.description,
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "relation": edge.relation,
                "weight": edge.weight,
            }
            for edge in graph.edges()
        ],
    }


def graph_from_dict(payload: dict) -> KnowledgeGraph:
    """Inverse of :func:`graph_to_dict`."""
    if "nodes" not in payload or "edges" not in payload:
        raise DataError("graph payload must contain 'nodes' and 'edges'")
    graph = KnowledgeGraph()
    for raw in payload["nodes"]:
        try:
            node = Node(
                node_id=str(raw["id"]),
                label=str(raw["label"]),
                entity_type=EntityType.from_string(raw.get("type", "OTHER")),
                aliases=tuple(raw.get("aliases", ())),
                description=str(raw.get("description", "")),
            )
        except KeyError as exc:
            raise DataError(f"node record missing field: {exc}") from exc
        graph.add_node(node)
    for raw in payload["edges"]:
        try:
            edge = Edge(
                source=str(raw["source"]),
                target=str(raw["target"]),
                relation=str(raw["relation"]),
                weight=float(raw.get("weight", 1.0)),
            )
        except KeyError as exc:
            raise DataError(f"edge record missing field: {exc}") from exc
        graph.add_edge(edge)
    return graph


def save_graph_json(graph: KnowledgeGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as a single JSON document."""
    payload = graph_to_dict(graph)
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_graph_json(path: str | Path) -> KnowledgeGraph:
    """Load a graph previously written by :func:`save_graph_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_dict(payload)


def save_graph_tsv(graph: KnowledgeGraph, edges_path: str | Path) -> None:
    """Write the edge list as TSV triples with weights."""
    lines = [
        f"{edge.source}\t{edge.relation}\t{edge.target}\t{edge.weight}"
        for edge in graph.edges()
    ]
    Path(edges_path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_graph_tsv(edges_path: str | Path) -> KnowledgeGraph:
    """Load TSV triples; nodes are created implicitly with id==label."""
    graph = KnowledgeGraph()
    text = Path(edges_path).read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) not in (3, 4):
            raise DataError(
                f"{edges_path}:{line_number}: expected 3 or 4 tab-separated "
                f"fields, got {len(parts)}"
            )
        source, relation, target = parts[0], parts[1], parts[2]
        weight = float(parts[3]) if len(parts) == 4 else 1.0
        for node_id in (source, target):
            if not graph.has_node(node_id):
                graph.add_node(Node(node_id=node_id, label=node_id))
        graph.add_edge(Edge(source, target, relation, weight))
    return graph
