"""The :class:`KnowledgeGraph` container.

A labeled, weighted, directed multigraph with an implicit *bidirected view*:
the NE component (paper §V-A) adds a reversed edge for every original edge to
enhance connectivity, so traversal iterates both out-edges (forward) and
in-edges (reverse) with equal weight.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.errors import DataError, NodeNotFoundError
from repro.kg.types import Edge, EntityType, Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.csr import CompiledGraph


class KnowledgeGraph:
    """In-memory knowledge graph.

    Nodes are keyed by ``node_id``; edges are stored in per-node adjacency
    lists.  Parallel edges with distinct relations are allowed; exact
    duplicates (same source, target and relation) are collapsed keeping the
    smaller weight.

    A monotonically increasing :attr:`version` (mirroring
    ``InvertedIndex.version``) lets derived structures — most importantly
    the :class:`~repro.kg.csr.CompiledGraph` CSR snapshot returned by
    :meth:`compiled` — key their caches on graph state instead of
    re-deriving it per use or risking staleness after mutations.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._out: dict[str, list[Edge]] = {}
        self._in: dict[str, list[Edge]] = {}
        self._edge_keys: dict[tuple[str, str, str], Edge] = {}
        self._version = 0
        self._csr_cache: "CompiledGraph | None" = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node``; replacing an existing node keeps its edges."""
        self._nodes[node.node_id] = node
        self._out.setdefault(node.node_id, [])
        self._in.setdefault(node.node_id, [])
        self._version += 1

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, edge: Edge) -> None:
        """Insert a directed edge; both endpoints must already exist."""
        if edge.source not in self._nodes:
            raise NodeNotFoundError(edge.source)
        if edge.target not in self._nodes:
            raise NodeNotFoundError(edge.target)
        if edge.weight <= 0:
            raise DataError(
                f"edge weight must be positive, got {edge.weight} for {edge.key()}"
            )
        existing = self._edge_keys.get(edge.key())
        if existing is not None:
            if edge.weight < existing.weight:
                self._replace_edge(existing, edge)
            return
        self._edge_keys[edge.key()] = edge
        self._out[edge.source].append(edge)
        self._in[edge.target].append(edge)
        self._version += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Insert every edge in ``edges``."""
        for edge in edges:
            self.add_edge(edge)

    def _replace_edge(self, old: Edge, new: Edge) -> None:
        self._edge_keys[new.key()] = new
        out_list = self._out[old.source]
        out_list[out_list.index(old)] = new
        in_list = self._in[old.target]
        in_list[in_list.index(old)] = new
        self._version += 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        """Return the node with ``node_id`` or raise ``NodeNotFoundError``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def has_node(self, node_id: str) -> bool:
        """True if ``node_id`` is present."""
        return node_id in self._nodes

    def has_edge(self, source: str, target: str, relation: str) -> bool:
        """True if the exact directed edge exists."""
        return (source, target, relation) in self._edge_keys

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes in insertion order."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[str]:
        """Iterate all node ids in insertion order."""
        return iter(self._nodes)

    def edges(self) -> Iterator[Edge]:
        """Iterate all directed edges."""
        return iter(self._edge_keys.values())

    def out_edges(self, node_id: str) -> list[Edge]:
        """Outgoing edges of ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return self._out[node_id]

    def in_edges(self, node_id: str) -> list[Edge]:
        """Incoming edges of ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return self._in[node_id]

    def bidirected_neighbors(self, node_id: str) -> Iterator[tuple[str, Edge, bool]]:
        """Neighbours of ``node_id`` in the bidirected view (§V-A).

        Yields ``(neighbor_id, edge, forward)`` triples: ``forward`` is True
        when the KG stores ``node_id -> neighbor`` (the edge is traversed in
        its original direction) and False when the traversal uses the added
        reverse edge.
        """
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        for edge in self._out[node_id]:
            yield edge.target, edge, True
        for edge in self._in[node_id]:
            yield edge.source, edge, False

    def degree(self, node_id: str) -> int:
        """Bidirected degree of ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return len(self._out[node_id]) + len(self._in[node_id])

    def nodes_of_type(self, entity_type: EntityType) -> list[Node]:
        """All nodes whose entity type equals ``entity_type``."""
        return [n for n in self._nodes.values() if n.entity_type is entity_type]

    # ------------------------------------------------------------------
    # compiled snapshot
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter: bumped by every node/edge insert or replace.

        Structures derived from graph state (the CSR snapshot, future
        caches) compare this against the version they were built at.
        """
        return self._version

    def compiled(self) -> "CompiledGraph":
        """The CSR snapshot of the bidirected view, built lazily.

        The snapshot is cached until the next mutation; a stale cache is
        rebuilt transparently on access, so callers never observe a
        snapshot that disagrees with the live graph.
        """
        from repro.kg.csr import CompiledGraph

        cache = self._csr_cache
        if cache is None or cache.version != self._version:
            cache = CompiledGraph.from_graph(self)
            self._csr_cache = cache
        return cache

    # ------------------------------------------------------------------
    # size
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (before the bidirected view)."""
        return len(self._edge_keys)

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:
        return f"KnowledgeGraph(nodes={self.num_nodes}, edges={self.num_edges})"

    # ------------------------------------------------------------------
    # subgraph helpers
    # ------------------------------------------------------------------
    def induced_subgraph(self, node_ids: Iterable[str]) -> "KnowledgeGraph":
        """The subgraph induced by ``node_ids`` (edges with both endpoints)."""
        keep = set(node_ids)
        sub = KnowledgeGraph()
        for node_id in keep:
            sub.add_node(self.node(node_id))
        for edge in self.edges():
            if edge.source in keep and edge.target in keep:
                sub.add_edge(edge)
        return sub

    def reweighted(self, relation_weights: dict[str, float]) -> "KnowledgeGraph":
        """A copy with per-relation weight multipliers applied.

        Embedding extensions downweight generic relations (e.g. broad
        ``diplomatic_relation`` edges) so the G* search prefers specific
        connections; relations absent from the map keep their weight.
        """
        reweighted = KnowledgeGraph()
        for node in self.nodes():
            reweighted.add_node(node)
        for edge in self.edges():
            factor = relation_weights.get(edge.relation, 1.0)
            if factor <= 0:
                raise DataError(
                    f"relation weight for {edge.relation!r} must be positive"
                )
            reweighted.add_edge(
                Edge(edge.source, edge.target, edge.relation, edge.weight * factor)
            )
        return reweighted

    def connected_components(self) -> list[set[str]]:
        """Weakly-connected components (bidirected view)."""
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._nodes:
            if start in seen:
                continue
            component: set[str] = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbor, _, _ in self.bidirected_neighbors(current):
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            seen |= component
            components.append(component)
        return components
