"""Knowledge-graph substrate.

Implements the labeled, weighted, (bi)directed multigraph the NE component
searches, an exact label/alias index (the paper's ``S(l)`` mapping), shortest
path machinery that keeps full shortest-path DAGs, serialization, statistics,
and the synthetic Wikidata-like world generator used in place of the Wikidata
dump (see DESIGN.md §1).
"""

from repro.kg.types import Node, Edge, EntityType
from repro.kg.graph import KnowledgeGraph
from repro.kg.csr import CompiledGraph
from repro.kg.label_index import LabelIndex
from repro.kg.traversal import (
    MultiSourceShortestPaths,
    shortest_path_dag,
    pairwise_distance,
)
from repro.kg.synthetic import SyntheticWorld, generate_world
from repro.kg.statistics import GraphStatistics, compute_statistics
from repro.kg.wikidata import WikidataImportConfig, load_wikidata_dump

__all__ = [
    "WikidataImportConfig",
    "load_wikidata_dump",
    "Node",
    "Edge",
    "EntityType",
    "KnowledgeGraph",
    "CompiledGraph",
    "LabelIndex",
    "MultiSourceShortestPaths",
    "shortest_path_dag",
    "pairwise_distance",
    "SyntheticWorld",
    "generate_world",
    "GraphStatistics",
    "compute_statistics",
]
