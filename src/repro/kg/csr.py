"""Compiled CSR snapshot of the knowledge graph's bidirected view.

The G* search (paper Algorithm 1) spends its whole life walking adjacency
lists.  The mutable :class:`~repro.kg.graph.KnowledgeGraph` optimizes for
incremental construction — string-keyed dicts of :class:`Edge` objects —
which makes every neighbor visit chase pointers, hash strings, and box
attributes.  :class:`CompiledGraph` freezes that structure, Lucene-style,
into four flat arrays in *compressed sparse row* layout:

* ``indptr``  — ``indptr[u] : indptr[u + 1]`` is node ``u``'s slot range;
* ``adj``     — flat neighbor int-ids (out-edges first, then in-edges,
  preserving :meth:`KnowledgeGraph.bidirected_neighbors` order);
* ``weights`` — the traversal cost per slot;
* ``refs``    — a packed ``(relation_id << 1) | forward`` int per slot,
  enough to reconstruct the :class:`~repro.kg.types.OrientedEdge` lazily.

Node ids are interned **in sorted order**, so comparing int ids is
equivalent to comparing node-id strings — the property that lets the
integer-id fast path (:mod:`repro.core.fast_search`) reproduce the
reference tie-breaks bit for bit.

Snapshots are immutable and cheap to share: the parallel indexer compiles
once before forking so every worker reads the same arrays copy-on-write.
Staleness is handled by :attr:`KnowledgeGraph.version` — the snapshot
records the version it was built at and :meth:`KnowledgeGraph.compiled`
rebuilds whenever the counter has moved.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.errors import NodeNotFoundError
from repro.kg.types import OrientedEdge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.graph import KnowledgeGraph


class CompiledGraph:
    """An immutable integer-id CSR view of one graph version.

    Build via :meth:`from_graph` (or, preferably, the caching
    :meth:`KnowledgeGraph.compiled`).  All arrays describe the *bidirected*
    view: every KG edge contributes one forward slot at its source and one
    reverse slot at its target, with equal weight (§V-A).
    """

    __slots__ = (
        "version",
        "node_ids",
        "index_of",
        "indptr",
        "adj",
        "weights",
        "refs",
        "relations",
    )

    def __init__(
        self,
        version: int,
        node_ids: tuple[str, ...],
        indptr: list[int],
        adj: list[int],
        weights: list[float],
        refs: list[int],
        relations: tuple[str, ...],
    ) -> None:
        self.version = version
        self.node_ids = node_ids
        self.index_of: dict[str, int] = {
            node_id: index for index, node_id in enumerate(node_ids)
        }
        self.indptr = indptr
        self.adj = adj
        self.weights = weights
        self.refs = refs
        self.relations = relations

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "KnowledgeGraph") -> "CompiledGraph":
        """Freeze ``graph``'s bidirected view at its current version."""
        node_ids = tuple(sorted(graph.node_ids()))
        index_of = {node_id: index for index, node_id in enumerate(node_ids)}
        relation_ids: dict[str, int] = {}
        indptr = [0] * (len(node_ids) + 1)
        adj: list[int] = []
        weights: list[float] = []
        refs: list[int] = []
        for index, node_id in enumerate(node_ids):
            for neighbor, edge, forward in graph.bidirected_neighbors(node_id):
                relation_id = relation_ids.setdefault(
                    edge.relation, len(relation_ids)
                )
                adj.append(index_of[neighbor])
                weights.append(edge.weight)
                refs.append((relation_id << 1) | (1 if forward else 0))
            indptr[index + 1] = len(adj)
        relations = tuple(
            sorted(relation_ids, key=lambda name: relation_ids[name])
        )
        return cls(
            version=graph.version,
            node_ids=node_ids,
            indptr=indptr,
            adj=adj,
            weights=weights,
            refs=refs,
            relations=relations,
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of interned nodes."""
        return len(self.node_ids)

    @property
    def num_slots(self) -> int:
        """Number of adjacency slots (2x the directed edge count)."""
        return len(self.adj)

    def node_index(self, node_id: str) -> int:
        """Int id of ``node_id``; raises ``NodeNotFoundError`` if absent."""
        try:
            return self.index_of[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def intern_sources(self, node_ids: Iterable[str]) -> list[int]:
        """Map a source set to sorted int ids (validates every member)."""
        return sorted(self.node_index(node_id) for node_id in node_ids)

    def degree(self, index: int) -> int:
        """Bidirected degree of the node with int id ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def oriented_edge(self, index: int, slot: int) -> OrientedEdge:
        """The traversal-oriented edge of adjacency ``slot`` of ``index``.

        Oriented the way the search crossed it: ``source`` is the node the
        slot belongs to, ``target`` its neighbor — matching the
        ``OrientedEdge`` the reference path builds during relaxation.
        """
        ref = self.refs[slot]
        return OrientedEdge(
            source=self.node_ids[index],
            target=self.node_ids[self.adj[slot]],
            relation=self.relations[ref >> 1],
            forward=bool(ref & 1),
            weight=self.weights[slot],
        )

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(version={self.version}, nodes={self.num_nodes}, "
            f"slots={self.num_slots}, relations={len(self.relations)})"
        )
