"""Exact label/alias index: the paper's ``S(l)`` mapping (§V-A).

Given an entity label ``l`` recognized in text, ``S(l)`` is the set of KG
nodes whose surface forms (label or alias) exactly match ``l`` after
normalization.  The paper reports a >96% match ratio per news segment with
exact matching, which the synthetic world reproduces.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.errors import LabelNotFoundError
from repro.kg.graph import KnowledgeGraph

_WHITESPACE = re.compile(r"\s+")


def normalize_label(label: str) -> str:
    """Normalize a surface form: casefold, trim and collapse whitespace."""
    return _WHITESPACE.sub(" ", label.strip()).casefold()


class LabelIndex:
    """Maps normalized surface forms to the set of matching node ids."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._index: dict[str, set[str]] = {}
        for node in graph.nodes():
            for form in node.surface_forms():
                normalized = normalize_label(form)
                if normalized:
                    self._index.setdefault(normalized, set()).add(node.node_id)

    @property
    def graph(self) -> KnowledgeGraph:
        """The knowledge graph this index was built over."""
        return self._graph

    def register(self, node) -> None:
        """Index a node added to the graph after construction.

        The index is built once from ``graph.nodes()``; live KG mutation
        (streaming ingest) must register new nodes explicitly or their
        surface forms stay invisible to NER.  Idempotent — re-registering
        an already-indexed node is a no-op.
        """
        for form in node.surface_forms():
            normalized = normalize_label(form)
            if normalized:
                self._index.setdefault(normalized, set()).add(node.node_id)

    def lookup(self, label: str) -> frozenset[str]:
        """Return ``S(label)`` — node ids whose surface forms exactly match.

        Raises ``LabelNotFoundError`` when nothing matches; callers that
        tolerate misses should use :meth:`try_lookup`.
        """
        nodes = self.try_lookup(label)
        if not nodes:
            raise LabelNotFoundError(label)
        return nodes

    def try_lookup(self, label: str) -> frozenset[str]:
        """Like :meth:`lookup` but returns an empty set on a miss."""
        return frozenset(self._index.get(normalize_label(label), ()))

    def __contains__(self, label: object) -> bool:
        if not isinstance(label, str):
            return False
        return normalize_label(label) in self._index

    def matching_ratio(self, labels: Iterable[str]) -> float:
        """Fraction of ``labels`` that match at least one node (Table V).

        Returns 1.0 for an empty input (vacuously all matched).
        """
        labels = list(labels)
        if not labels:
            return 1.0
        matched = sum(1 for label in labels if label in self)
        return matched / len(labels)

    def surface_forms(self) -> Iterable[str]:
        """All normalized surface forms known to the index."""
        return self._index.keys()

    @property
    def num_forms(self) -> int:
        """Number of distinct normalized surface forms."""
        return len(self._index)
