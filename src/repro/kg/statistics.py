"""Descriptive statistics over a knowledge graph.

Used by tests and benchmarks to sanity-check that the synthetic world has
Wikidata-like structure (connected, shallow, with parallel paths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.graph import KnowledgeGraph
from repro.kg.traversal import MultiSourceShortestPaths


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a KG.

    Attributes:
        num_nodes: node count.
        num_edges: directed edge count.
        num_components: weakly-connected component count.
        largest_component: size of the largest component.
        mean_degree: average bidirected degree.
        max_degree: maximum bidirected degree.
        eccentricity_sample: max shortest-path distance observed from a
            sample node in the largest component (a diameter lower bound).
    """

    num_nodes: int
    num_edges: int
    num_components: int
    largest_component: int
    mean_degree: float
    max_degree: int
    eccentricity_sample: float


def compute_statistics(graph: KnowledgeGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    components = graph.connected_components()
    degrees = [graph.degree(node_id) for node_id in graph.node_ids()]
    largest = max(components, key=len) if components else set()
    eccentricity = 0.0
    if largest:
        anchor = min(largest)
        sssp = MultiSourceShortestPaths(graph, [anchor])
        distances = sssp.run_to_completion()
        if distances:
            eccentricity = max(distances.values())
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_components=len(components),
        largest_component=len(largest),
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        max_degree=max(degrees, default=0),
        eccentricity_sample=eccentricity,
    )
