"""Shortest-path machinery over the bidirected KG view.

The G* search (Algorithm 1) interleaves one Dijkstra *per entity label*, so
:class:`MultiSourceShortestPaths` exposes an incremental, pop-one-node-at-a-
time interface.  It also maintains full shortest-path **DAG** predecessors,
because the Lowest Common Ancestor Graph must preserve *all* shortest paths
``P(l -> r, D)`` from a label's source nodes to the root (Equation 1) — the
"width"/coverage property that distinguishes LCAG from tree models.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

from repro.kg.graph import KnowledgeGraph
from repro.kg.types import OrientedEdge

# Tolerance for "two paths have the same weight".  Edge weights are user
# data (usually 1.0); exact float equality would make tie detection fragile
# under summation order.
_TIE_EPS = 1e-9


class MultiSourceShortestPaths:
    """Incremental multi-source Dijkstra with shortest-path DAG tracking.

    Sources all start at distance 0 (Definition 2: the entity-node distance
    ``D(l, v)`` is the minimum over the label's source set ``S(l)``).  The
    search runs over the *bidirected* view of the graph (§V-A).

    Typical use::

        sssp = MultiSourceShortestPaths(graph, sources)
        while (peeked := sssp.peek_min()) is not None:
            node, dist = sssp.pop()
            ...

    Popped nodes are *settled*: their distance is final and their
    predecessor set already contains every tie predecessor (ties can only
    come from strictly closer nodes because edge weights are positive).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        sources: Iterable[str],
        max_depth: float | None = None,
    ) -> None:
        self._graph = graph
        self._max_depth = math.inf if max_depth is None else max_depth
        self._settled: dict[str, float] = {}
        self._tentative: dict[str, float] = {}
        # node -> list of (pred_node, OrientedEdge towards node)
        self._preds: dict[str, list[tuple[str, OrientedEdge]]] = {}
        self._heap: list[tuple[float, str]] = []
        #: Neighbor slots examined by relaxation (SearchStats.relaxations).
        self.relaxations = 0
        #: Heap insertions, sources included (SearchStats.heap_pushes).
        self.heap_pushes = 0
        self._sources = frozenset(sources)
        for source in self._sources:
            graph.node(source)  # raises NodeNotFoundError on bad input
            self._tentative[source] = 0.0
            self._preds[source] = []
            heapq.heappush(self._heap, (0.0, source))
            self.heap_pushes += 1

    @property
    def sources(self) -> frozenset[str]:
        """The source node-id set (``S(l)`` for a label search)."""
        return self._sources

    # ------------------------------------------------------------------
    # incremental interface
    # ------------------------------------------------------------------
    def peek_min(self) -> tuple[str, float] | None:
        """The next node to settle and its distance, or None if exhausted."""
        self._discard_stale()
        if not self._heap:
            return None
        dist, node = self._heap[0]
        return node, dist

    def pop(self) -> tuple[str, float] | None:
        """Settle and return the closest unsettled node, or None."""
        if self.peek_min() is None:
            return None
        return self.pop_peeked()

    def pop_peeked(self) -> tuple[str, float]:
        """Settle the node an immediately preceding :meth:`peek_min` saw.

        Skips the stale-entry sweep — the preceding peek already left a
        fresh entry on top — so a caller that has to peek anyway (the
        frontier pool's Equation-2 argmin, :func:`pairwise_distance`'s
        early exit) pays for one pass, not two.  Must not be called
        without a peek, or after a mutation invalidated it.
        """
        dist, node = heapq.heappop(self._heap)
        if __debug__:
            current = self._tentative.get(node)
            assert current is not None and abs(current - dist) <= _TIE_EPS, (
                f"pop_peeked without a fresh peek: {node!r} at {dist}"
            )
        del self._tentative[node]
        self._settled[node] = dist
        self._relax_neighbors(node, dist)
        return node, dist

    def _discard_stale(self) -> None:
        while self._heap:
            dist, node = self._heap[0]
            current = self._tentative.get(node)
            if current is not None and abs(current - dist) <= _TIE_EPS:
                return
            heapq.heappop(self._heap)

    def _relax_neighbors(self, node: str, dist: float) -> None:
        for neighbor, edge, forward in self._graph.bidirected_neighbors(node):
            self.relaxations += 1
            if neighbor in self._settled:
                continue
            candidate = dist + edge.weight
            if candidate > self._max_depth + _TIE_EPS:
                continue
            oriented = OrientedEdge(
                source=node,
                target=neighbor,
                relation=edge.relation,
                forward=forward,
                weight=edge.weight,
            )
            current = self._tentative.get(neighbor, math.inf)
            if candidate < current - _TIE_EPS:
                self._tentative[neighbor] = candidate
                self._preds[neighbor] = [(node, oriented)]
                heapq.heappush(self._heap, (candidate, neighbor))
                self.heap_pushes += 1
            elif abs(candidate - current) <= _TIE_EPS:
                self._preds[neighbor].append((node, oriented))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_settled(self, node: str) -> bool:
        """True if ``node``'s distance is final."""
        return node in self._settled

    def distance(self, node: str) -> float:
        """Settled distance of ``node``; +inf when not settled yet."""
        return self._settled.get(node, math.inf)

    def settled_nodes(self) -> dict[str, float]:
        """A copy of the settled node -> distance mapping."""
        return dict(self._settled)

    def run_to_completion(self) -> dict[str, float]:
        """Settle every reachable node (within max_depth); return distances."""
        while self.pop() is not None:
            pass
        return self.settled_nodes()

    # ------------------------------------------------------------------
    # shortest-path DAG extraction
    # ------------------------------------------------------------------
    def extract_paths_to(
        self, target: str
    ) -> tuple[set[str], set[OrientedEdge]]:
        """All shortest paths from the sources to ``target`` (Equation 1).

        Returns the node set and oriented edge set of the union of every
        shortest path; edges are oriented source -> ... -> ``target``.
        Requires ``target`` to be settled.
        """
        if target not in self._settled:
            raise KeyError(f"target {target!r} is not settled")
        nodes: set[str] = {target}
        edges: set[OrientedEdge] = set()
        stack = [target]
        while stack:
            current = stack.pop()
            for pred, oriented in self._preds.get(current, []):
                edges.add(oriented)
                if pred not in nodes:
                    nodes.add(pred)
                    stack.append(pred)
        return nodes, edges

    def extract_single_path_to(
        self, target: str
    ) -> tuple[list[str], list[OrientedEdge]]:
        """One (deterministic) shortest path to ``target``.

        Used by the TreeEmb baseline, which keeps exactly one path per
        label.  Ties are broken by the smallest predecessor node id so the
        extraction is deterministic.
        """
        if target not in self._settled:
            raise KeyError(f"target {target!r} is not settled")
        path_nodes = [target]
        path_edges: list[OrientedEdge] = []
        current = target
        while self._preds.get(current):
            pred, oriented = min(self._preds[current], key=lambda item: item[0])
            path_edges.append(oriented)
            path_nodes.append(pred)
            current = pred
        path_nodes.reverse()
        path_edges.reverse()
        return path_nodes, path_edges


def shortest_path_dag(
    graph: KnowledgeGraph,
    sources: Iterable[str],
    max_depth: float | None = None,
) -> MultiSourceShortestPaths:
    """Run a multi-source Dijkstra to completion and return it."""
    sssp = MultiSourceShortestPaths(graph, sources, max_depth=max_depth)
    sssp.run_to_completion()
    return sssp


def pairwise_distance(
    graph: KnowledgeGraph,
    source: str,
    target: str,
    max_depth: float | None = None,
) -> float:
    """Bidirected shortest-path distance between two nodes (+inf if none).

    ``max_depth`` bounds the search radius (+inf result beyond it), and
    the search exits as soon as ``target`` reaches the top of the heap —
    its distance is final at that point (Dijkstra), so relaxing its
    neighbors and growing the frontier any further is pure waste.
    """
    sssp = MultiSourceShortestPaths(graph, [source], max_depth=max_depth)
    while (peeked := sssp.peek_min()) is not None:
        node, dist = peeked
        if node == target:
            return dist
        sssp.pop_peeked()
    return math.inf
