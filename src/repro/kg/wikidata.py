"""Importer for real Wikidata JSON dumps.

The paper embeds news into the public Wikidata dump.  This module parses
the standard dump format — one entity document per line (the dump wraps
lines in a JSON array with trailing commas; both shapes are accepted) —
into a :class:`KnowledgeGraph`:

* ``labels.<lang>.value`` becomes the node label,
* ``aliases.<lang>[].value`` become aliases,
* ``descriptions.<lang>.value`` becomes the description (QEPRF uses it),
* every truthy statement whose main snak holds a ``wikibase-entityid``
  becomes a directed edge, optionally renamed through a property-label
  map (e.g. ``{"P131": "located_in"}``),
* the entity type is inferred from ``P31`` (instance of) targets through
  a user-supplied class map.

Only edges whose two endpoints are both retained are added, so the
importer can build a filtered subgraph of a huge dump in one pass over
the file plus one pass over buffered statements.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.kg.graph import KnowledgeGraph
from repro.kg.types import Edge, EntityType, Node

#: Property id for "instance of".
INSTANCE_OF = "P31"


@dataclass(frozen=True)
class WikidataImportConfig:
    """Importer options.

    Attributes:
        language: label/alias/description language code.
        property_labels: property id -> relation name; unmapped properties
            keep their raw id (e.g. ``"P131"``).
        class_types: "instance of" target id -> entity type; e.g.
            ``{"Q5": EntityType.PERSON, "Q515": EntityType.GPE}``.
        keep_properties: when non-empty, only these property ids become
            edges.
        max_entities: stop after this many retained entities (0 = all).
        require_label: drop entities with no label in ``language``.
    """

    language: str = "en"
    property_labels: dict[str, str] = field(default_factory=dict)
    class_types: dict[str, EntityType] = field(default_factory=dict)
    keep_properties: frozenset[str] = frozenset()
    max_entities: int = 0
    require_label: bool = True


def _iter_dump_lines(lines: Iterable[str]) -> Iterator[dict]:
    """Yield entity documents from dump lines, tolerating array wrappers."""
    for line in lines:
        stripped = line.strip().rstrip(",")
        if not stripped or stripped in ("[", "]"):
            continue
        yield json.loads(stripped)


def _entity_statements(entity: dict) -> Iterator[tuple[str, str]]:
    """Yield ``(property_id, target_entity_id)`` for entity-valued snaks."""
    for property_id, statements in entity.get("claims", {}).items():
        for statement in statements:
            snak = statement.get("mainsnak", {})
            if snak.get("snaktype") != "value":
                continue
            datavalue = snak.get("datavalue", {})
            if datavalue.get("type") != "wikibase-entityid":
                continue
            target = datavalue.get("value", {}).get("id")
            if target:
                yield property_id, target


def _entity_type(
    entity: dict, class_types: dict[str, EntityType]
) -> EntityType:
    for property_id, target in _entity_statements(entity):
        if property_id == INSTANCE_OF and target in class_types:
            return class_types[target]
    return EntityType.OTHER


def load_wikidata_dump(
    source: str | Path | Iterable[str],
    config: WikidataImportConfig | None = None,
) -> KnowledgeGraph:
    """Build a :class:`KnowledgeGraph` from a Wikidata JSON dump.

    ``source`` may be a file path or any iterable of dump lines (so tests
    and streaming decompressors both work).
    """
    config = config or WikidataImportConfig()
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _load_from_lines(handle, config)
    return _load_from_lines(source, config)


def _load_from_lines(
    lines: Iterable[str], config: WikidataImportConfig
) -> KnowledgeGraph:
    graph = KnowledgeGraph()
    buffered_edges: list[Edge] = []
    language = config.language
    for entity in _iter_dump_lines(lines):
        entity_id = entity.get("id")
        if not entity_id or not str(entity_id).startswith("Q"):
            continue  # properties (P...) and lexemes are not entity nodes
        label_record = entity.get("labels", {}).get(language)
        label = label_record.get("value", "") if label_record else ""
        if not label:
            if config.require_label:
                continue
            label = str(entity_id)
        aliases = tuple(
            alias.get("value", "")
            for alias in entity.get("aliases", {}).get(language, [])
            if alias.get("value")
        )
        description_record = entity.get("descriptions", {}).get(language)
        description = (
            description_record.get("value", "") if description_record else ""
        )
        graph.add_node(
            Node(
                node_id=str(entity_id),
                label=label,
                entity_type=_entity_type(entity, config.class_types),
                aliases=aliases,
                description=description,
            )
        )
        for property_id, target in _entity_statements(entity):
            if config.keep_properties and property_id not in config.keep_properties:
                continue
            relation = config.property_labels.get(property_id, property_id)
            buffered_edges.append(Edge(str(entity_id), target, relation))
        if config.max_entities and graph.num_nodes >= config.max_entities:
            break
    for edge in buffered_edges:
        if graph.has_node(edge.source) and graph.has_node(edge.target):
            graph.add_edge(edge)
    return graph
