"""Synthetic Wikidata-like world generator.

The paper embeds news into the public Wikidata dump (30M nodes).  Offline we
generate a world with the same structural motifs the NE component exploits:

* geographic containment hierarchies (city -> province -> country),
* organizations headquartered in places and tied to countries,
* persons with citizenship, memberships and leadership roles,
* **events** that link many entities together — these play the role of the
  paper's induced common ancestors (e.g. the "US presidential election"
  node of Figure 6 that never occurs in the news text),
* parallel relationship paths (a person reaches a country both through
  citizenship and through their organization), so the LCAG "width" property
  is observable.

Every generated surface form is made of capitalized invented words so the
gazetteer NER's capitalization heuristic fires and no label collides with
English filler vocabulary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.config import WorldConfig
from repro.kg.graph import KnowledgeGraph
from repro.kg.types import Edge, EntityType, Node
from repro.utils.rng import ensure_rng

_ONSETS = [
    "Ba", "Bel", "Cor", "Dal", "Del", "Dor", "Fal", "Gar", "Hal", "Jor",
    "Kal", "Kel", "Lan", "Lor", "Mar", "Mel", "Nor", "Or", "Pal", "Quin",
    "Ral", "Sal", "Tal", "Tor", "Ul", "Val", "Ver", "Wes", "Yor", "Zan",
]
_MIDDLES = ["da", "de", "di", "do", "ga", "ka", "la", "li", "ma", "mi", "na", "ni", "ra", "ri", "sa", "ta", "ti", "va", "vi", "za"]
_PLACE_SUFFIXES = ["land", "mark", "ovia", "stan", "burg", "ford", "holm", "ville", "grad", "port", "shire", "field"]
_PERSON_FIRST_SUFFIXES = ["an", "ar", "en", "ia", "in", "is", "on", "or", "ra", "us"]
_PERSON_LAST_SUFFIXES = ["ez", "ini", "man", "sen", "ski", "son", "stein", "ton", "wall", "wicz"]

_ORG_PATTERNS = {
    "party": ["{} Party", "{} Alliance", "{} Movement"],
    "militant": ["{} Front", "{} Brigade", "{} Liberation Army"],
    "company": ["{} Industries", "{} Holdings", "{} Energy"],
    "club": ["{} United", "{} Rovers", "{} Athletic"],
    "agency": ["{} Bureau", "{} Authority", "{} Commission"],
}
_ORG_KINDS = list(_ORG_PATTERNS)

EVENT_KINDS = ("conflict", "election", "tournament", "summit", "merger", "scandal")


@dataclass(frozen=True)
class EventSpec:
    """A planted event: the topical nucleus news documents are drawn from.

    Attributes:
        event_id: the event's KG node id.
        kind: one of :data:`EVENT_KINDS`.
        name: the event node's label (usually *not* mentioned in news text,
            so it appears only as an induced entity in embeddings).
        country_id: anchor country node id.
        mention_pool: node ids whose labels news documents may mention.
        core_ids: the tight participant set (subset of ``mention_pool``)
            most characteristic of the event.
    """

    event_id: str
    kind: str
    name: str
    country_id: str
    mention_pool: tuple[str, ...]
    core_ids: tuple[str, ...]


@dataclass
class SyntheticWorld:
    """The generated world: a KG plus the planted event inventory."""

    graph: KnowledgeGraph
    events: list[EventSpec]
    config: WorldConfig
    countries: list[str] = field(default_factory=list)
    provinces: list[str] = field(default_factory=list)
    cities: list[str] = field(default_factory=list)
    organizations: list[str] = field(default_factory=list)
    persons: list[str] = field(default_factory=list)


class _NameFactory:
    """Deterministic unique-name generator built on invented syllables."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._used: set[str] = set()

    def _syllable_word(self, with_middle_prob: float = 0.55) -> str:
        onset = _ONSETS[int(self._rng.integers(len(_ONSETS)))]
        if self._rng.random() < with_middle_prob:
            onset += _MIDDLES[int(self._rng.integers(len(_MIDDLES)))]
        return onset

    def _unique(self, candidate_factory) -> str:
        for _ in range(1000):
            name = candidate_factory()
            if name not in self._used:
                self._used.add(name)
                return name
        raise RuntimeError("name space exhausted; enlarge syllable inventory")

    def place(self) -> str:
        return self._unique(
            lambda: self._syllable_word()
            + _PLACE_SUFFIXES[int(self._rng.integers(len(_PLACE_SUFFIXES)))]
        )

    def person(self) -> str:
        def build() -> str:
            first = self._syllable_word(0.3) + _PERSON_FIRST_SUFFIXES[
                int(self._rng.integers(len(_PERSON_FIRST_SUFFIXES)))
            ]
            last = self._syllable_word(0.5) + _PERSON_LAST_SUFFIXES[
                int(self._rng.integers(len(_PERSON_LAST_SUFFIXES)))
            ]
            return f"{first} {last}"

        return self._unique(build)

    def organization(self, kind: str) -> str:
        patterns = _ORG_PATTERNS[kind]

        def build() -> str:
            pattern = patterns[int(self._rng.integers(len(patterns)))]
            return pattern.format(self._syllable_word())

        return self._unique(build)

    def event(self, kind: str, anchor_label: str, year: int) -> str:
        titles = {
            "conflict": f"{anchor_label} Insurgency of {year}",
            "election": f"{anchor_label} General Election {year}",
            "tournament": f"{anchor_label} Championship {year}",
            "summit": f"{anchor_label} Summit {year}",
            "merger": f"{anchor_label} Merger Deal of {year}",
            "scandal": f"{anchor_label} Corruption Affair of {year}",
        }
        return self._unique(lambda: titles[kind])


class _WorldBuilder:
    """Stateful builder that assembles the world step by step."""

    def __init__(self, config: WorldConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.names = _NameFactory(rng)
        self.graph = KnowledgeGraph()
        self._ids = itertools.count(1)
        self.countries: list[str] = []
        self.provinces: list[str] = []
        self.cities: list[str] = []
        self.province_cities: dict[str, list[str]] = {}
        self.country_provinces: dict[str, list[str]] = {}
        self.org_ids: dict[str, list[str]] = {kind: [] for kind in _ORG_KINDS}
        self.org_country: dict[str, str] = {}
        self.persons: list[str] = []
        self.person_country: dict[str, str] = {}
        self.org_members: dict[str, list[str]] = {}
        self.events: list[EventSpec] = []

    # -- helpers -------------------------------------------------------
    def _new_node(
        self,
        label: str,
        entity_type: EntityType,
        description: str,
        alias: str | None = None,
    ) -> str:
        node_id = f"Q{next(self._ids)}"
        aliases: tuple[str, ...] = ()
        if alias is None and self.rng.random() < self.config.alias_probability:
            alias = self._derive_alias(label, entity_type)
        if alias:
            aliases = (alias,)
        self.graph.add_node(
            Node(
                node_id=node_id,
                label=label,
                entity_type=entity_type,
                aliases=aliases,
                description=description,
            )
        )
        return node_id

    def _derive_alias(self, label: str, entity_type: EntityType) -> str | None:
        words = label.split()
        if entity_type is EntityType.PERSON and len(words) >= 2:
            return words[-1]  # family-name mention, common in newswire
        if entity_type is EntityType.ORG and len(words) >= 2:
            return "".join(word[0] for word in words).upper()
        if entity_type in (EntityType.GPE, EntityType.LOC) and len(words) == 1:
            return f"{label} Region"
        return None

    def _edge(self, source: str, target: str, relation: str) -> None:
        self.graph.add_edge(Edge(source, target, relation))

    def _choice(self, pool: list[str]) -> str:
        return pool[int(self.rng.integers(len(pool)))]

    def _sample(self, pool: list[str], k: int) -> list[str]:
        k = min(k, len(pool))
        if k == 0:
            return []
        indexes = self.rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in indexes]

    # -- build steps ---------------------------------------------------
    def build_geography(self) -> None:
        for _ in range(self.config.num_countries):
            country_label = self.names.place()
            country = self._new_node(
                country_label,
                EntityType.GPE,
                f"sovereign country of {country_label}",
            )
            self.countries.append(country)
            self.country_provinces[country] = []
            for _ in range(self.config.provinces_per_country):
                province_label = self.names.place()
                province = self._new_node(
                    province_label,
                    EntityType.GPE,
                    f"province of {country_label}",
                )
                self.provinces.append(province)
                self.country_provinces[country].append(province)
                self.province_cities[province] = []
                self._edge(province, country, "located_in")
                for _ in range(self.config.cities_per_province):
                    city_label = self.names.place()
                    city = self._new_node(
                        city_label,
                        EntityType.GPE,
                        f"city in {province_label}, {country_label}",
                    )
                    self.cities.append(city)
                    self.province_cities[province].append(city)
                    self._edge(city, province, "located_in")
        # Neighbouring provinces within a country share borders, creating
        # the parallel geographic paths seen in the paper's Figure 1.
        for country in self.countries:
            provinces = self.country_provinces[country]
            for left, right in zip(provinces, provinces[1:]):
                self._edge(left, right, "shares_border_with")
        # Chain countries to keep the world connected.
        for left, right in zip(self.countries, self.countries[1:]):
            self._edge(left, right, "diplomatic_relation")

    def build_organizations(self) -> None:
        for index in range(self.config.num_organizations):
            kind = _ORG_KINDS[index % len(_ORG_KINDS)]
            label = self.names.organization(kind)
            country = self._choice(self.countries)
            city = self._choice(self.cities)
            org = self._new_node(
                label,
                EntityType.ORG,
                f"{kind} organization based in {self.graph.node(city).label}",
            )
            self.org_ids[kind].append(org)
            self.org_country[org] = country
            self.org_members[org] = []
            self._edge(org, city, "headquartered_in")
            self._edge(org, country, "operates_in")

    def build_persons(self) -> None:
        all_orgs = [org for orgs in self.org_ids.values() for org in orgs]
        for index in range(self.config.num_persons):
            label = self.names.person()
            country = self._choice(self.countries)
            person = self._new_node(
                label,
                EntityType.PERSON,
                f"public figure from {self.graph.node(country).label}",
            )
            self.persons.append(person)
            self.person_country[person] = country
            self._edge(person, country, "citizen_of")
            if all_orgs and self.rng.random() < 0.7:
                org = self._choice(all_orgs)
                self._edge(person, org, "member_of")
                self.org_members[org].append(person)
        # Leaders: one head of state per country, one leader per org.
        for country in self.countries:
            leader = self._choice(self.persons)
            self._edge(leader, country, "head_of_state_of")
        for org in all_orgs:
            if self.rng.random() < 0.6:
                leader = self._choice(self.persons)
                self._edge(leader, org, "leader_of")
                self.org_members[org].append(leader)

    # -- events --------------------------------------------------------
    def build_events(self) -> None:
        year_counter = itertools.count(2009)
        for index in range(self.config.num_events):
            kind = EVENT_KINDS[index % len(EVENT_KINDS)]
            year = next(year_counter)
            builder = getattr(self, f"_build_{kind}_event")
            spec = builder(year)
            self.events.append(spec)

    def _event_node(self, kind: str, anchor_label: str, year: int) -> tuple[str, str]:
        name = self.names.event(kind, anchor_label, year)
        node = self._new_node(
            name, EntityType.EVENT, f"{kind} event involving {anchor_label}"
        )
        return node, name

    def _build_conflict_event(self, year: int) -> EventSpec:
        country = self._choice(self.countries)
        province = self._choice(self.country_provinces[country])
        cities = self._sample(self.province_cities[province], 4)
        militants = self._sample(self.org_ids["militant"], 2)
        event, name = self._event_node(
            "conflict", self.graph.node(province).label, year
        )
        self._edge(event, province, "occurs_in")
        self._edge(country, event, "participant_of")
        for militant in militants:
            self._edge(militant, event, "participant_of")
        persons = [
            person
            for militant in militants
            for person in self.org_members.get(militant, [])
        ]
        pool = [country, province, *cities, *militants, *persons]
        core = [*militants, country, province]
        return EventSpec(event, "conflict", name, country, tuple(pool), tuple(core))

    def _build_election_event(self, year: int) -> EventSpec:
        country = self._choice(self.countries)
        candidates = self._sample(self.persons, 4)
        parties = self._sample(self.org_ids["party"], 3)
        event, name = self._event_node(
            "election", self.graph.node(country).label, year
        )
        self._edge(event, country, "held_in")
        for candidate in candidates:
            self._edge(candidate, event, "candidate_of")
        for party in parties:
            self._edge(party, event, "participant_of")
        pool = [country, *candidates, *parties]
        return EventSpec(
            event, "election", name, country, tuple(pool), tuple(candidates)
        )

    def _build_tournament_event(self, year: int) -> EventSpec:
        clubs = self._sample(self.org_ids["club"], 4)
        city = self._choice(self.cities)
        country = self._choice(self.countries)
        event, name = self._event_node(
            "tournament", self.graph.node(city).label, year
        )
        self._edge(event, city, "held_in")
        for club in clubs:
            self._edge(club, event, "participant_of")
        players = [
            member for club in clubs for member in self.org_members.get(club, [])
        ]
        pool = [city, *clubs, *players]
        return EventSpec(event, "tournament", name, country, tuple(pool), tuple(clubs))

    def _build_summit_event(self, year: int) -> EventSpec:
        attending = self._sample(self.countries, 4)
        host_city = self._choice(self.cities)
        event, name = self._event_node(
            "summit", self.graph.node(host_city).label, year
        )
        self._edge(event, host_city, "held_in")
        for country in attending:
            self._edge(country, event, "participant_of")
        pool = [host_city, *attending]
        return EventSpec(
            event, "summit", name, attending[0], tuple(pool), tuple(attending)
        )

    def _build_merger_event(self, year: int) -> EventSpec:
        companies = self._sample(self.org_ids["company"], 3)
        country = self._choice(self.countries)
        event, name = self._event_node(
            "merger", self.graph.node(companies[0]).label, year
        )
        for company in companies:
            self._edge(company, event, "party_to")
        self._edge(event, country, "occurs_in")
        executives = [
            member
            for company in companies
            for member in self.org_members.get(company, [])
        ]
        pool = [*companies, country, *executives]
        return EventSpec(event, "merger", name, country, tuple(pool), tuple(companies))

    def _build_scandal_event(self, year: int) -> EventSpec:
        person = self._choice(self.persons)
        agency = self._choice(self.org_ids["agency"]) if self.org_ids["agency"] else None
        country = self.person_country[person]
        event, name = self._event_node(
            "scandal", self.graph.node(person).label.split()[-1], year
        )
        self._edge(person, event, "involved_in")
        pool = [person, country]
        core = [person]
        if agency:
            self._edge(agency, event, "investigator_of")
            pool.append(agency)
            core.append(agency)
        self._edge(event, country, "occurs_in")
        return EventSpec(event, "scandal", name, country, tuple(pool), tuple(core))

    def build_extra_edges(self) -> None:
        """Random long-range relations that create alternative paths."""
        relations = [
            ("twinned_with", self.cities, self.cities),
            ("ally_of", self.provinces, self.provinces),
            ("diplomatic_relation", self.countries, self.countries),
        ]
        for _ in range(self.config.extra_edges):
            relation, pool_a, pool_b = relations[
                int(self.rng.integers(len(relations)))
            ]
            if not pool_a or not pool_b:
                continue
            source = self._choice(pool_a)
            target = self._choice(pool_b)
            if source != target:
                self._edge(source, target, relation)

    def finish(self) -> SyntheticWorld:
        return SyntheticWorld(
            graph=self.graph,
            events=self.events,
            config=self.config,
            countries=self.countries,
            provinces=self.provinces,
            cities=self.cities,
            organizations=[o for orgs in self.org_ids.values() for o in orgs],
            persons=self.persons,
        )


def generate_world(
    config: WorldConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> SyntheticWorld:
    """Generate a :class:`SyntheticWorld` from ``config``.

    Deterministic given ``config.seed`` (or an explicit ``rng``).
    """
    config = config or WorldConfig()
    generator = ensure_rng(config.seed if rng is None else rng)
    builder = _WorldBuilder(config, generator)
    builder.build_geography()
    builder.build_organizations()
    builder.build_persons()
    builder.build_events()
    builder.build_extra_edges()
    return builder.finish()
