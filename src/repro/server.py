"""A dependency-free HTTP API over an indexed engine or a coordinator.

The paper positions NewsLink as easy to integrate "with most existing
search systems, such as ElasticSearch and Lucene"; this module gives the
engine the corresponding service surface using only the standard library:

* ``GET /health``                         — liveness, index size, degradation counters
* ``GET /search?q=...&k=5&beta=0.2``      — ranked results with snippets
  (``deadline_ms=50`` bounds the query; expired queries come back
  ``degraded`` instead of failing).  Personalization rides along:
  ``session=<id>`` re-anchors the query on the conversation so far and
  advances the session; ``user=<id>`` blends the user's click-history
  profile (single-engine serving only); ``gamma=`` overrides the
  context-channel weight (defaults to :data:`DEFAULT_GAMMA` whenever a
  session or user is given, 0 otherwise)
* ``GET /explain?q=...&doc=<doc_id>``     — shared entities + paths
  (``session=<id>`` renders them against the whole conversation's
  subgraph — dialogue-style explanations)
* ``GET /document?id=<doc_id>``           — the stored raw text
* ``POST /session``                       — mint a conversational session
* ``GET /session?id=<sid>``               — session diagnostics
* ``POST /session/reset?id=<sid>``        — forget accumulated context
* ``POST /click?user=<uid>&doc=<doc_id>`` — fold a clicked document's
  subgraph into the user's profile (single-engine serving only)
* ``GET /metrics``                        — Prometheus text exposition
  (the unified registry: latency histograms, cache hit/miss, degraded
  and G* counters; see ``docs/observability.md``)
* ``GET /stats``                          — the same registry as JSON,
  plus the raw stats silos and the most recent query traces

The ``target`` may be a single :class:`NewsLinkEngine` or a sharded
:class:`~repro.serving.coordinator.Coordinator` — the endpoints are the
same; a coordinator additionally reports ``partial`` results and
answers 429 when admission control sheds a query (see
``docs/serving.md``).

Error mapping: client mistakes (bad parameters, malformed values,
configuration/data errors) are 400, unknown documents are 404, shed
queries are 429, a shard outage on a routed request is 503, an idle
connection that never sends its request line is 408, and any unexpected
server-side failure is a 500 with a JSON body — the handler never lets
an exception escape as a bare connection reset.

Responses are JSON.  Start with::

    from repro.server import serve
    serve(engine, port=8080)            # blocks; SIGTERM/SIGINT drain

or create a server via :func:`make_server` to manage the lifecycle
yourself (the tests do this).  :func:`make_server` returns a
:class:`NewsLinkHTTPServer` whose ``server_close`` *drains*: handler
threads are non-daemon and joined, so no request is cut off mid-reply.
"""

from __future__ import annotations

import contextlib
import json
import select
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    ConfigError,
    DataError,
    DocumentNotIndexedError,
    OverloadShedError,
    ReproError,
    ShardFailedError,
)
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    PersonalizationInstruments,
    render_json,
    render_prometheus,
)
from repro.personalize import ProfileStore, SessionStore
from repro.search.engine import NewsLinkEngine

#: Default seconds an accepted connection may idle before its request
#: line arrives; beyond it the server answers 408 and closes.  Also the
#: socket timeout covering mid-request stalls (closed without a reply —
#: once bytes went missing mid-stream there is no safe write to make).
REQUEST_TIMEOUT_S = 30.0

#: Context-channel weight applied when ``/search`` carries a session or
#: user but no explicit ``gamma=``.  Strong enough to re-rank on shared
#: context, weak enough that the query's own two channels still dominate.
DEFAULT_GAMMA = 0.35


def _is_coordinator(target: object) -> bool:
    """Duck-typed: a sharded coordinator (vs a single engine)."""
    return hasattr(target, "search_detailed")


def _search_payload(target, params: dict, personalization) -> dict:
    query = params.get("q", [""])[0]
    if not query:
        raise _BadRequest("missing required parameter: q")
    k = int(params.get("k", ["10"])[0])
    beta_values = params.get("beta")
    beta = float(beta_values[0]) if beta_values else None
    deadline_values = params.get("deadline_ms")
    deadline_ms = float(deadline_values[0]) if deadline_values else None
    if deadline_ms is not None and deadline_ms <= 0:
        raise _BadRequest("deadline_ms must be positive")
    session_values = params.get("session")
    session = (
        personalization.session(session_values[0]) if session_values else None
    )
    user_values = params.get("user")
    profile = (
        personalization.profile(target, user_values[0])
        if user_values
        else None
    )
    gamma_values = params.get("gamma")
    gamma = float(gamma_values[0]) if gamma_values else None
    if gamma is None and (session is not None or profile is not None):
        gamma = personalization.default_gamma
    # Captured *before* the search advances the session: "personalized"
    # mirrors the engine's gate for THIS query — a context channel only
    # engages when gamma is positive and the profile/session had terms.
    has_context = bool(
        (profile is not None and profile.bon_terms())
        or (session is not None and session.bon_terms())
    )
    partial = False
    failed_shards: tuple[int, ...] = ()
    if _is_coordinator(target):
        outcome = target.search_detailed(
            query,
            k,
            beta=beta,
            deadline_ms=deadline_ms,
            profile=profile,
            session=session,
            gamma=gamma,
            advance_session=session is not None,
        )
        results = outcome.results
        partial = outcome.partial
        failed_shards = outcome.failed_shards
    else:
        results = target.search(
            query,
            k=k,
            beta=beta,
            deadline_ms=deadline_ms,
            profile=profile,
            session=session,
            gamma=gamma,
            advance_session=session is not None,
        )
    degraded = bool(results) and results[0].degraded
    payload = []
    for rank, result in enumerate(results, start=1):
        snippet = target.snippet(query, result.doc_id)
        payload.append(
            {
                "rank": rank,
                "doc_id": result.doc_id,
                "score": result.score,
                "bow_score": result.bow_score,
                "bon_score": result.bon_score,
                "profile_score": result.profile_score,
                "degraded": result.degraded,
                "snippet": snippet.text,
            }
        )
    body = {"query": query, "k": k, "degraded": degraded, "results": payload}
    body["personalized"] = bool(
        gamma is not None and gamma > 0.0 and has_context and not degraded
    )
    if session is not None:
        body["session"] = {
            "id": session.session_id,
            "turns": session.num_turns,
            "advanced": not degraded,
        }
    if degraded:
        body["degraded_reason"] = results[0].degraded_reason
    if _is_coordinator(target):
        body["partial"] = partial
        if partial:
            body["failed_shards"] = list(failed_shards)
    return body


def _explain_payload(target, params: dict, personalization) -> dict:
    query = params.get("q", [""])[0]
    doc_id = params.get("doc", [""])[0]
    if not query or not doc_id:
        raise _BadRequest("missing required parameters: q and doc")
    session_values = params.get("session")
    query_embedding = None
    session_id = None
    if session_values:
        # Dialogue-style explanation: LCAG paths are rendered against
        # the conversation's accumulated subgraph (which, after a
        # session search, already contains the current query's turn),
        # so the connections explain the whole thread of questions.
        session = personalization.session(session_values[0])
        session_id = session.session_id
        if session.num_turns:
            query_embedding = session.dialogue_embedding()
    explanation = target.explanation(
        query, doc_id, query_embedding=query_embedding
    )
    body = {
        "query": query,
        "doc_id": doc_id,
        "shared_entities": list(explanation.shared_entity_labels),
        "paths": explanation.lines()[len(explanation.shared_entity_labels):],
        "novelty": explanation.novelty,
        "total_nodes": explanation.total_nodes,
    }
    if session_id is not None:
        body["session"] = session_id
    return body


def _session_info_payload(personalization, params: dict) -> dict:
    session_id = params.get("id", [""])[0]
    if not session_id:
        raise _BadRequest("missing required parameter: id")
    return personalization.session(session_id).as_dict()


def _session_create_payload(personalization) -> dict:
    session = personalization.sessions.create()
    return {"session_id": session.session_id}


def _session_reset_payload(personalization, params: dict) -> dict:
    session_id = params.get("id", [""])[0]
    if not session_id:
        raise _BadRequest("missing required parameter: id")
    session = personalization.session(session_id)
    session.reset()
    return session.as_dict()


def _click_payload(target, params: dict, personalization) -> dict:
    user_id = params.get("user", [""])[0]
    doc_id = params.get("doc", [""])[0]
    if not user_id or not doc_id:
        raise _BadRequest("missing required parameters: user and doc")
    profile = personalization.profile(target, user_id)
    # Raises DocumentNotIndexedError (mapped to 404) for unknown docs,
    # so a bad click can never poison the profile.
    embedding = target.embedding(doc_id)
    profile.record_click(doc_id, embedding)
    return profile.as_dict()


def _document_payload(target, params: dict) -> dict:
    doc_id = params.get("id", [""])[0]
    if not doc_id:
        raise _BadRequest("missing required parameter: id")
    return {"doc_id": doc_id, "text": target.document_text(doc_id)}


def _health_payload(target, ingest=None, personalization=None) -> dict:
    if _is_coordinator(target):
        body = {
            "status": "ok",
            "indexed": target.num_indexed,
            "queries": target.serving_stats.queries,
            "degraded_queries": target.serving_stats.degraded_queries,
            "partial_queries": target.serving_stats.partial_queries,
            "shed_queries": target.serving_stats.shed_queries,
            "live_workers": target.shard_group.live_workers(),
        }
    else:
        stats = target.query_stats
        body = {
            "status": "ok",
            "indexed": target.num_indexed,
            "queries": stats.queries,
            "degraded_queries": stats.degraded_queries,
            "fallback_queries": stats.fallback_queries,
        }
    if ingest is not None:
        body["ingest"] = {
            name: state.breaker.state
            for name, state in ingest.source_states.items()
        }
    if personalization is not None:
        body["sessions"] = len(personalization.sessions)
        if personalization.profiles is not None:
            body["profiles"] = len(personalization.profiles)
    return body


def _stats_payload(target, ingest=None, personalization=None) -> dict:
    """The registry plus the raw stats silos as one JSON document."""
    if _is_coordinator(target):
        body = target.stats_payload()
        if personalization is not None:
            body["personalization"] = personalization.stats_payload()
        return body
    snapshot = target.metrics_registry.snapshot()
    body: dict = {
        "indexed": target.num_indexed,
        "query_stats": target.query_stats.as_dict(),
        "search_stats": target.search_stats.as_dict(),
        "metrics": render_json(snapshot),
        "traces": target.observability.tracer.records(),
    }
    cache = target.cache_stats
    if cache is not None:
        body["segment_cache"] = cache.as_dict()
    report = target.last_index_report
    if report is not None:
        body["index_report"] = report.as_dict()
    load_info = target.last_load_info
    if load_info is not None:
        body["index"] = load_info
    if ingest is not None:
        body["ingest"] = ingest.stats_payload()
    if personalization is not None:
        body["personalization"] = personalization.stats_payload()
    return body


def _metrics_snapshot(target) -> dict:
    if _is_coordinator(target):
        return target.metrics_snapshot()
    return target.metrics_registry.snapshot()


class _BadRequest(Exception):
    pass


class _NotFound(Exception):
    pass


class PersonalizationState:
    """Server-side conversational + per-user search state.

    Sessions are always available — they live entirely on the frontend
    (accumulated *query* subgraphs), so they work identically against a
    single engine and a sharded coordinator.  Profiles additionally need
    per-document embeddings to fold clicks in, and the coordinator
    frontend is document-free, so the profile store exists only under
    single-engine serving (the CLI's ``--profiles`` flag).
    """

    def __init__(
        self,
        sessions: SessionStore | None = None,
        profiles: ProfileStore | None = None,
        default_gamma: float = DEFAULT_GAMMA,
    ) -> None:
        self.sessions = sessions if sessions is not None else SessionStore()
        self.profiles = profiles
        self.default_gamma = default_gamma
        self._instruments: PersonalizationInstruments | None = None

    def bind_instruments(self, registry) -> None:
        """Export the stores' counters through ``registry`` (idempotent)."""
        if self._instruments is not None:
            return
        instruments = PersonalizationInstruments(registry)
        instruments.bind(self.sessions, self.profiles)
        self._instruments = instruments

    def session(self, session_id: str):
        """A live session by id; 404s when unknown or evicted."""
        session = self.sessions.get(session_id)
        if session is None:
            raise _NotFound(f"unknown session: {session_id}")
        return session

    def profile(self, target, user_id: str):
        """The user's profile; 400s when profiles cannot serve here."""
        if _is_coordinator(target):
            raise _BadRequest(
                "user profiles require single-engine serving: the "
                "coordinator frontend is document-free and cannot fold "
                "clicked documents into a profile"
            )
        if self.profiles is None:
            raise _BadRequest(
                "user profiles are not enabled on this server "
                "(start it with --profiles)"
            )
        return self.profiles.get(user_id)

    def stats_payload(self) -> dict:
        body: dict = {
            "default_gamma": self.default_gamma,
            "sessions": self.sessions.snapshot(),
        }
        if self.profiles is not None:
            body["profiles"] = self.profiles.snapshot()
        return body


class NewsLinkHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server whose ``server_close`` **drains**.

    ``ThreadingHTTPServer`` defaults to daemon handler threads, so a
    process exiting right after ``server_close()`` kills requests
    mid-reply.  Handler threads here are non-daemon and joined on close
    (``block_on_close``): stop accepting first (``shutdown()``), then
    ``server_close()`` returns only once every in-flight request has
    been answered.
    """

    daemon_threads = False
    block_on_close = True


def make_handler(
    target,
    request_timeout: float = REQUEST_TIMEOUT_S,
    ingest=None,
    personalization: PersonalizationState | None = None,
) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to ``target`` (engine or coordinator).

    With an attached :class:`~repro.ingest.IngestPipeline`, every request
    serializes against its ``engine_lock`` — the ingest thread mutates
    the same engine between requests, never during one — and ``/stats``
    and ``/health`` grow an ``ingest`` section (WAL, DLQ, per-source
    breaker health, freshness percentiles).

    ``personalization`` defaults to a fresh :class:`PersonalizationState`
    with sessions only; pass one with a :class:`ProfileStore` to enable
    per-user profiles (single-engine serving).  Its store counters are
    bound into the target's metrics registry so ``/metrics`` exports the
    ``newslink_session_*`` / ``newslink_profile_*`` series.
    """
    if personalization is None:
        personalization = PersonalizationState()
    registry = (
        target.frontend.metrics_registry
        if _is_coordinator(target)
        else target.metrics_registry
    )
    personalization.bind_instruments(registry)

    class NewsLinkHandler(BaseHTTPRequestHandler):
        # Socket timeout for mid-request stalls: a client that goes
        # silent *after* starting its request gets the connection closed
        # (no reply is safe once a read timed out mid-stream).
        timeout = request_timeout

        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            pass  # keep tests/CLIs quiet; override for access logs

        def handle_one_request(self) -> None:
            """408 for connections that idle before sending a request.

            The base class swallows its socket-timeout internally and
            closes without a word; polling *before* the first read lets
            the server tell an idle client explicitly that it was too
            slow — distinguishable (and testable) client error, not a
            silent reset.  No bytes have been read yet, so writing a
            response here is always safe.
            """
            ready, _, _ = select.select(
                [self.connection], [], [], request_timeout
            )
            if not ready:
                body = json.dumps(
                    {"error": f"request timeout after {request_timeout}s"}
                ).encode("utf-8")
                try:
                    self.wfile.write(
                        b"HTTP/1.1 408 Request Timeout\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                        b"Connection: close\r\n\r\n" + body
                    )
                    self.wfile.flush()
                except (BrokenPipeError, OSError):
                    pass  # client gave up first; nothing to tell it
                self.close_connection = True
                return
            super().handle_one_request()

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            self._dispatch("POST")

        def _route(self, method: str, path: str, params: dict):
            """Payload for one request; None when already replied."""
            if method == "GET":
                if path == "/health":
                    return _health_payload(target, ingest, personalization)
                if path == "/search":
                    return _search_payload(target, params, personalization)
                if path == "/explain":
                    return _explain_payload(target, params, personalization)
                if path == "/document":
                    return _document_payload(target, params)
                if path == "/session":
                    return _session_info_payload(personalization, params)
                if path == "/metrics":
                    self._reply_text(
                        200,
                        render_prometheus(_metrics_snapshot(target)),
                        PROMETHEUS_CONTENT_TYPE,
                    )
                    return None
                if path == "/stats":
                    return _stats_payload(target, ingest, personalization)
            elif method == "POST":
                if path == "/session":
                    return _session_create_payload(personalization)
                if path == "/session/reset":
                    return _session_reset_payload(personalization, params)
                if path == "/click":
                    return _click_payload(target, params, personalization)
            self._reply(
                404, {"error": f"unknown path {path} for {method}"}
            )
            return None

        def _dispatch(self, method: str) -> None:
            parsed = urlparse(self.path)
            params = parse_qs(parsed.query)
            guard = (
                ingest.engine_lock
                if ingest is not None
                else contextlib.nullcontext()
            )
            try:
                with guard:
                    body = self._route(method, parsed.path, params)
                    if body is None:
                        return
            except _BadRequest as exc:
                self._reply(400, {"error": str(exc)})
                return
            except (_NotFound, DocumentNotIndexedError) as exc:
                self._reply(404, {"error": str(exc)})
                return
            except OverloadShedError as exc:
                # Shedding is the overload policy working as designed:
                # tell the client to back off and retry.
                self._reply(
                    429,
                    {"error": str(exc), "reason": exc.reason},
                    extra_headers=(("Retry-After", "1"),),
                )
                return
            except ShardFailedError as exc:
                # A routed single-shard request (snippet/document/
                # explain) lost its shard: temporarily unavailable.
                self._reply(
                    503, {"error": str(exc), "shard": exc.shard_id}
                )
                return
            except (ValueError, ConfigError, DataError) as exc:
                # The client sent something the engine rejects: malformed
                # numbers, bad ranking names, invalid parameter values.
                self._reply(400, {"error": str(exc)})
                return
            except ReproError as exc:
                # The request was well-formed but serving it failed —
                # that is the server's fault, not the client's.
                self._reply(
                    500, {"error": str(exc), "type": type(exc).__name__}
                )
                return
            except Exception as exc:  # noqa: BLE001 - hardening boundary
                self._reply(
                    500,
                    {
                        "error": f"internal server error: {exc}",
                        "type": type(exc).__name__,
                    },
                )
                return
            self._reply(200, body)

        def _reply(
            self,
            status: int,
            body: dict,
            extra_headers: tuple[tuple[str, str], ...] = (),
        ) -> None:
            data = json.dumps(body).encode("utf-8")
            self._reply_bytes(
                status, data, "application/json", extra_headers
            )

        def _reply_text(
            self, status: int, text: str, content_type: str
        ) -> None:
            self._reply_bytes(status, text.encode("utf-8"), content_type)

        def _reply_bytes(
            self,
            status: int,
            data: bytes,
            content_type: str,
            extra_headers: tuple[tuple[str, str], ...] = (),
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in extra_headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

    return NewsLinkHandler


def make_server(
    target,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = REQUEST_TIMEOUT_S,
    ingest=None,
    personalization: PersonalizationState | None = None,
) -> NewsLinkHTTPServer:
    """A ready-to-run server (``port=0`` picks a free port)."""
    return NewsLinkHTTPServer(
        (host, port),
        make_handler(target, request_timeout, ingest, personalization),
    )


def shutdown_gracefully(server: NewsLinkHTTPServer, target, ingest=None) -> None:
    """Stop accepting, drain in-flight requests, release the target.

    The shutdown order matters: ``shutdown()`` stops the accept loop,
    ``server_close()`` joins the (non-daemon) handler threads so every
    accepted request finishes its reply; an attached ingest pipeline is
    then closed — its dispatch thread stops, the WAL is flushed and a
    final checkpoint committed, so the next start recovers O(tail)
    instead of replaying history — and only then is the target closed (a
    coordinator terminates its shard workers here, so no forked process
    outlives the server).
    """
    server.shutdown()
    server.server_close()
    if ingest is not None:
        ingest.close()
    close = getattr(target, "close", None)
    if close is not None:
        close()


def serve(
    target,
    host: str = "127.0.0.1",
    port: int = 8080,
    request_timeout: float = REQUEST_TIMEOUT_S,
    install_signals: bool | None = None,
    stop_event: threading.Event | None = None,
    ingest=None,
    personalization: PersonalizationState | None = None,
) -> None:
    """Serve until SIGTERM/SIGINT (or ``stop_event``), then drain.

    ``install_signals`` defaults to True on the main thread (Python
    forbids installing handlers elsewhere); tests running ``serve`` on a
    helper thread pass their own ``stop_event`` instead.  On shutdown
    the server stops accepting, finishes every in-flight request, closes
    the attached ingest pipeline if any (WAL flush + final checkpoint),
    and closes the target (terminating shard workers when the target is
    a coordinator) before returning.
    """
    server = make_server(
        target, host, port, request_timeout, ingest, personalization
    )
    stop = stop_event or threading.Event()
    if install_signals is None:
        install_signals = (
            threading.current_thread() is threading.main_thread()
        )
    previous: dict[int, object] = {}
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_args: stop.set()
            )
    loop = threading.Thread(
        target=server.serve_forever, name="newslink-accept-loop"
    )
    loop.start()
    print(
        f"NewsLink API listening on http://{host}:{server.server_address[1]}",
        flush=True,
    )
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        shutdown_gracefully(server, target, ingest)
        loop.join()
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
    print("NewsLink API drained and stopped", flush=True)
