"""A dependency-free HTTP API over an indexed engine.

The paper positions NewsLink as easy to integrate "with most existing
search systems, such as ElasticSearch and Lucene"; this module gives the
engine the corresponding service surface using only the standard library:

* ``GET /health``                         — liveness, index size, degradation counters
* ``GET /search?q=...&k=5&beta=0.2``      — ranked results with snippets
  (``deadline_ms=50`` bounds the query; expired queries come back
  ``degraded`` instead of failing)
* ``GET /explain?q=...&doc=<doc_id>``     — shared entities + paths
* ``GET /document?id=<doc_id>``           — the stored raw text
* ``GET /metrics``                        — Prometheus text exposition
  (the unified registry: latency histograms, cache hit/miss, degraded
  and G* counters; see ``docs/observability.md``)
* ``GET /stats``                          — the same registry as JSON,
  plus the raw stats silos and the most recent query traces

Error mapping: client mistakes (bad parameters, malformed values,
configuration/data errors) are 400, unknown documents are 404, and any
unexpected server-side failure is a 500 with a JSON body — the handler
never lets an exception escape as a bare connection reset.

Responses are JSON.  Start with::

    from repro.server import serve
    serve(engine, port=8080)            # blocks

or create a :class:`ThreadingHTTPServer` via :func:`make_server` to manage
the lifecycle yourself (the tests do this).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    ConfigError,
    DataError,
    DocumentNotIndexedError,
    ReproError,
)
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    render_json,
    render_prometheus,
)
from repro.search.engine import NewsLinkEngine


def _search_payload(engine: NewsLinkEngine, params: dict) -> dict:
    query = params.get("q", [""])[0]
    if not query:
        raise _BadRequest("missing required parameter: q")
    k = int(params.get("k", ["10"])[0])
    beta_values = params.get("beta")
    beta = float(beta_values[0]) if beta_values else None
    deadline_values = params.get("deadline_ms")
    deadline_ms = float(deadline_values[0]) if deadline_values else None
    if deadline_ms is not None and deadline_ms <= 0:
        raise _BadRequest("deadline_ms must be positive")
    results = engine.search(query, k=k, beta=beta, deadline_ms=deadline_ms)
    degraded = bool(results) and results[0].degraded
    payload = []
    for rank, result in enumerate(results, start=1):
        snippet = engine.snippet(query, result.doc_id)
        payload.append(
            {
                "rank": rank,
                "doc_id": result.doc_id,
                "score": result.score,
                "bow_score": result.bow_score,
                "bon_score": result.bon_score,
                "degraded": result.degraded,
                "snippet": snippet.text,
            }
        )
    body = {"query": query, "k": k, "degraded": degraded, "results": payload}
    if degraded:
        body["degraded_reason"] = results[0].degraded_reason
    return body


def _explain_payload(engine: NewsLinkEngine, params: dict) -> dict:
    query = params.get("q", [""])[0]
    doc_id = params.get("doc", [""])[0]
    if not query or not doc_id:
        raise _BadRequest("missing required parameters: q and doc")
    explanation = engine.explanation(query, doc_id)
    return {
        "query": query,
        "doc_id": doc_id,
        "shared_entities": list(explanation.shared_entity_labels),
        "paths": explanation.lines()[len(explanation.shared_entity_labels):],
        "novelty": explanation.novelty,
        "total_nodes": explanation.total_nodes,
    }


def _document_payload(engine: NewsLinkEngine, params: dict) -> dict:
    doc_id = params.get("id", [""])[0]
    if not doc_id:
        raise _BadRequest("missing required parameter: id")
    return {"doc_id": doc_id, "text": engine.document_text(doc_id)}


def _stats_payload(engine: NewsLinkEngine) -> dict:
    """The registry plus the raw stats silos as one JSON document."""
    snapshot = engine.metrics_registry.snapshot()
    body: dict = {
        "indexed": engine.num_indexed,
        "query_stats": engine.query_stats.as_dict(),
        "search_stats": engine.search_stats.as_dict(),
        "metrics": render_json(snapshot),
        "traces": engine.observability.tracer.records(),
    }
    cache = engine.cache_stats
    if cache is not None:
        body["segment_cache"] = cache.as_dict()
    report = engine.last_index_report
    if report is not None:
        body["index_report"] = report.as_dict()
    return body


class _BadRequest(Exception):
    pass


def make_handler(engine: NewsLinkEngine) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to ``engine``."""

    class NewsLinkHandler(BaseHTTPRequestHandler):
        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            pass  # keep tests/CLIs quiet; override for access logs

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            params = parse_qs(parsed.query)
            try:
                if parsed.path == "/health":
                    stats = engine.query_stats
                    body = {
                        "status": "ok",
                        "indexed": engine.num_indexed,
                        "queries": stats.queries,
                        "degraded_queries": stats.degraded_queries,
                        "fallback_queries": stats.fallback_queries,
                    }
                elif parsed.path == "/search":
                    body = _search_payload(engine, params)
                elif parsed.path == "/explain":
                    body = _explain_payload(engine, params)
                elif parsed.path == "/document":
                    body = _document_payload(engine, params)
                elif parsed.path == "/metrics":
                    snapshot = engine.metrics_registry.snapshot()
                    self._reply_text(
                        200,
                        render_prometheus(snapshot),
                        PROMETHEUS_CONTENT_TYPE,
                    )
                    return
                elif parsed.path == "/stats":
                    body = _stats_payload(engine)
                else:
                    self._reply(404, {"error": f"unknown path {parsed.path}"})
                    return
            except _BadRequest as exc:
                self._reply(400, {"error": str(exc)})
                return
            except DocumentNotIndexedError as exc:
                self._reply(404, {"error": str(exc)})
                return
            except (ValueError, ConfigError, DataError) as exc:
                # The client sent something the engine rejects: malformed
                # numbers, bad ranking names, invalid parameter values.
                self._reply(400, {"error": str(exc)})
                return
            except ReproError as exc:
                # The request was well-formed but serving it failed —
                # that is the server's fault, not the client's.
                self._reply(
                    500, {"error": str(exc), "type": type(exc).__name__}
                )
                return
            except Exception as exc:  # noqa: BLE001 - hardening boundary
                self._reply(
                    500,
                    {
                        "error": f"internal server error: {exc}",
                        "type": type(exc).__name__,
                    },
                )
                return
            self._reply(200, body)

        def _reply(self, status: int, body: dict) -> None:
            data = json.dumps(body).encode("utf-8")
            self._reply_bytes(status, data, "application/json")

        def _reply_text(
            self, status: int, text: str, content_type: str
        ) -> None:
            self._reply_bytes(status, text.encode("utf-8"), content_type)

        def _reply_bytes(
            self, status: int, data: bytes, content_type: str
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

    return NewsLinkHandler


def make_server(
    engine: NewsLinkEngine, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-run server (``port=0`` picks a free port)."""
    return ThreadingHTTPServer((host, port), make_handler(engine))


def serve(engine: NewsLinkEngine, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Serve forever (blocking)."""
    server = make_server(engine, host, port)
    print(f"NewsLink API listening on http://{host}:{server.server_address[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        server.shutdown()
