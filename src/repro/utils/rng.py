"""Seeded randomness helpers.

All stochastic components in the library accept either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalize that choice so the
whole reproduction is deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a generator seeded with 0 (the library default) so that
    forgetting a seed never silently introduces nondeterminism.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        rng = 0
    return np.random.default_rng(rng)


def spawn_rngs(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Useful when several components must be seeded from one master seed
    without sharing state (e.g. the KG generator and the news generator).
    """
    master = ensure_rng(rng)
    seeds = master.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
