"""Shared utilities: seeded randomness, timing, and text hashing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, TimingBreakdown
from repro.utils.hashing import stable_hash, hash_to_unit_interval

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimingBreakdown",
    "stable_hash",
    "hash_to_unit_interval",
]
