"""Shared utilities: randomness, timing, hashing, deadlines, retries."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, TimingBreakdown
from repro.utils.hashing import stable_hash, hash_to_unit_interval
from repro.utils.deadline import Deadline
from repro.utils.retry import retry_with_backoff

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimingBreakdown",
    "stable_hash",
    "hash_to_unit_interval",
    "Deadline",
    "retry_with_backoff",
]
