"""Stable text hashing.

Python's builtin ``hash`` is salted per process, so dense-vector components
that derive "pretrained" vectors from token identity (the SBERT substitute,
FastText subword buckets) use these deterministic hashes instead.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1


def stable_hash(text: str, salt: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``text``.

    The same ``(text, salt)`` pair hashes identically across processes and
    Python versions, which keeps hash-derived embeddings reproducible.
    """
    payload = f"{salt}\x00{text}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MASK64


def hash_to_unit_interval(text: str, salt: int = 0) -> float:
    """Map ``text`` deterministically to a float in ``[0, 1)``."""
    return stable_hash(text, salt) / float(1 << 64)
