"""Retry with exponential backoff (optionally jittered, budgeted).

One tiny, dependency-free helper shared by the fault-tolerant worker pool
(:mod:`repro.parallel`), the streaming-ingest fetch path
(:mod:`repro.ingest`) and any caller that talks to flaky resources.
Deterministic by design: the default is pure exponential backoff with no
jitter and an injectable ``sleep``, so tests can assert the exact delay
sequence; callers that want *decorrelated jitter* (the AWS backoff
strategy that spreads retry storms across clients) opt in with
``jitter="decorrelated"`` plus a seed, keeping the schedule reproducible.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")

#: Valid values of the ``jitter`` argument.
JITTER_MODES = (None, "decorrelated")


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    jitter: str | None = None,
    rng=None,
    max_elapsed: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``fn`` until it succeeds, retrying on ``retry_on`` exceptions.

    Args:
        fn: zero-argument callable to run.
        attempts: total tries (>= 1); the last failure propagates.
        base_delay: sleep before the first retry, in seconds.
        factor: multiplier applied to the delay after each retry
            (ignored under decorrelated jitter).
        max_delay: upper bound on any single sleep.
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
        sleep: injectable sleep (tests pass a recorder).
        on_retry: optional callback ``(attempt_number, exception)`` invoked
            before each backoff sleep — used for retry counters.
        jitter: ``None`` (default) keeps the deterministic exponential
            schedule ``base, base*factor, ...``; ``"decorrelated"`` draws
            each delay uniformly from ``[base_delay, 3 * previous_delay]``
            (capped at ``max_delay``), which decorrelates concurrent
            retriers without ever sleeping less than ``base_delay``.
        rng: seed or ``numpy.random.Generator`` for the jitter draws
            (``None`` seeds with 0 via :func:`repro.utils.rng.ensure_rng`
            so jittered schedules stay reproducible by default).
        max_elapsed: optional total retry budget in seconds, measured on
            ``clock`` from the first call.  When a failure occurs after
            the budget is spent — or the next backoff sleep would
            overrun it — the failure propagates immediately even if
            attempts remain.  The budget never interrupts ``fn`` itself.
        clock: injectable monotonic clock for the ``max_elapsed`` budget.

    Returns:
        ``fn()``'s result from the first successful attempt.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if jitter not in JITTER_MODES:
        raise ValueError(
            f"jitter must be one of {JITTER_MODES}, got {jitter!r}"
        )
    if max_elapsed is not None and max_elapsed <= 0:
        raise ValueError("max_elapsed must be positive when set")
    if jitter == "decorrelated":
        from repro.utils.rng import ensure_rng

        generator = ensure_rng(rng)
    started = clock() if max_elapsed is not None else 0.0
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise
            if jitter == "decorrelated":
                pause = min(
                    max_delay,
                    float(generator.uniform(base_delay, max(base_delay, delay * 3.0))),
                )
            else:
                pause = min(delay, max_delay)
            if max_elapsed is not None and (
                clock() - started + pause > max_elapsed
            ):
                # The budget is spent (or the next sleep would overrun
                # it): give up now rather than retrying late.
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(pause)
            delay = pause if jitter == "decorrelated" else delay * factor
    raise AssertionError("unreachable")  # pragma: no cover
