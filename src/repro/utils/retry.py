"""Retry with exponential backoff.

One tiny, dependency-free helper shared by the fault-tolerant worker pool
(:mod:`repro.parallel`) and available to any caller that talks to flaky
resources.  Deterministic by design: no jitter, injectable ``sleep``, so
tests can assert the exact delay sequence.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds, retrying on ``retry_on`` exceptions.

    Args:
        fn: zero-argument callable to run.
        attempts: total tries (>= 1); the last failure propagates.
        base_delay: sleep before the first retry, in seconds.
        factor: multiplier applied to the delay after each retry.
        max_delay: upper bound on any single sleep.
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
        sleep: injectable sleep (tests pass a recorder).
        on_retry: optional callback ``(attempt_number, exception)`` invoked
            before each backoff sleep — used for retry counters.

    Returns:
        ``fn()``'s result from the first successful attempt.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(min(delay, max_delay))
            delay *= factor
    raise AssertionError("unreachable")  # pragma: no cover
