"""Lightweight timing utilities for the Fig 7 / Table VIII experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import Span


class Stopwatch:
    """A context-manager stopwatch measuring wall-clock seconds.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingBreakdown:
    """Accumulates per-component wall-clock time across repeated operations.

    Used by :mod:`repro.eval.timing` to produce the paper's component
    breakdowns (NLP / NE / NS).

    A breakdown can be *span-backed*: linking a
    :class:`repro.obs.tracing.Span` via :attr:`span` forwards every
    ``add`` as a stage record on that span, so the trace's nlp/ne/ns
    stage timings are the exact numbers the breakdown accumulates — one
    clock, one instrumentation point, two views.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    span: "Span | None" = None

    def add(self, component: str, seconds: float) -> None:
        """Record ``seconds`` of work attributed to ``component``."""
        self.totals[component] = self.totals.get(component, 0.0) + seconds
        self.counts[component] = self.counts.get(component, 0) + 1
        if self.span is not None:
            self.span.record_stage(component, seconds)

    def measure(self, component: str) -> "_MeasureContext":
        """Return a context manager that times its body into ``component``."""
        return _MeasureContext(self, component)

    def average(self, component: str) -> float:
        """Mean seconds per recorded operation for ``component``."""
        count = self.counts.get(component, 0)
        if count == 0:
            return 0.0
        return self.totals[component] / count

    def total(self, component: str) -> float:
        """Total seconds recorded for ``component``."""
        return self.totals.get(component, 0.0)

    def components(self) -> list[str]:
        """Component names in insertion order."""
        return list(self.totals)

    def merge(self, other: "TimingBreakdown") -> None:
        """Fold another breakdown's totals and counts into this one."""
        for component, seconds in other.totals.items():
            self.totals[component] = self.totals.get(component, 0.0) + seconds
        for component, count in other.counts.items():
            self.counts[component] = self.counts.get(component, 0) + count


class _MeasureContext:
    def __init__(self, breakdown: TimingBreakdown, component: str) -> None:
        self._breakdown = breakdown
        self._component = component
        self._start = 0.0

    def __enter__(self) -> "_MeasureContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._breakdown.add(self._component, time.perf_counter() - self._start)
