"""Wall-clock deadlines for budgeted query serving.

``LcagConfig.max_pops`` bounds *work* but not *time*: a pathological query
on a hot machine can blow a latency SLO long before the pop budget runs
out.  A :class:`Deadline` carries an absolute monotonic expiry through the
serving path (``NewsLinkEngine.search`` → ``process_query`` → the G*
search loops) so the engine can abandon query embedding and degrade to
text-only ranking instead of missing its response window.

The G* loops check the clock every :data:`CHECK_INTERVAL` pops rather
than every pop — one ``time.monotonic()`` call costs more than a heap
pop, and the search advances fast enough that the quantization error is
microseconds.  Tests monkeypatch the constant (and inject a fake clock)
to make expiry deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

#: Frontier pops between wall-clock checks inside the G* search loops.
#: Read at search entry, so monkeypatching it affects subsequent searches.
CHECK_INTERVAL = 64


class Deadline:
    """An absolute expiry instant derived from a millisecond budget.

    The clock is injectable (default :func:`time.monotonic`) so tests can
    drive expiry deterministically; everything downstream only ever calls
    :meth:`expired` / :meth:`remaining_ms`.
    """

    __slots__ = ("budget_ms", "_clock", "_expires_at")

    def __init__(
        self, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_ms <= 0:
            raise ValueError("deadline budget_ms must be positive")
        self.budget_ms = budget_ms
        self._clock = clock
        self._expires_at = clock() + budget_ms / 1000.0

    def expired(self) -> bool:
        """True once the wall clock has passed the expiry instant."""
        return self._clock() >= self._expires_at

    def remaining_ms(self) -> float:
        """Milliseconds until expiry (negative once expired)."""
        return (self._expires_at - self._clock()) * 1000.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_ms={self.budget_ms}, "
            f"remaining_ms={self.remaining_ms():.3f})"
        )
