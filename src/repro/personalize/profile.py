"""User profiles: the union subgraph of a click history.

Following LKPNR (see PAPERS.md), a user's interest model is the union of
the knowledge subgraphs of the documents they clicked.  Embeddings are
already computed per document by the engine (``G*`` node counts), so a
profile is maintained incrementally: each click folds one document's
``node_counts`` into a running union, and evicting the oldest click
subtracts it back out — no re-embedding, ever.

The profile's ranking contribution is :meth:`UserProfile.bon_terms`:
the top ``max_terms`` union nodes (by count, node-id tie-break) emitted
in canonical sorted order with count repeats, exactly the shape
:func:`repro.search.bon.bon_terms` produces for a query embedding.  The
``revision`` counter versions the profile for the engine's query-cache
key — any mutation invalidates cached personalized rankings.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Mapping

from repro.core.document_embedding import DocumentEmbedding

#: Default bound on remembered clicks per profile.
DEFAULT_MAX_CLICKS = 64
#: Default bound on distinct context nodes contributed to ranking.
DEFAULT_MAX_TERMS = 128


class UserProfile:
    """Bounded, incrementally-maintained click-history subgraph union."""

    def __init__(
        self,
        user_id: str,
        max_clicks: int = DEFAULT_MAX_CLICKS,
        max_terms: int = DEFAULT_MAX_TERMS,
    ) -> None:
        if max_clicks <= 0:
            raise ValueError("max_clicks must be positive")
        if max_terms <= 0:
            raise ValueError("max_terms must be positive")
        self._user_id = user_id
        self._max_clicks = max_clicks
        self._max_terms = max_terms
        # doc_id -> that click's node counts, in click order (oldest first).
        self._clicks: OrderedDict[str, dict[str, int]] = OrderedDict()
        self._counts: Counter[str] = Counter()
        self._revision = 0
        self._terms_cache: tuple[int, tuple[str, ...]] | None = None

    @property
    def user_id(self) -> str:
        return self._user_id

    @property
    def profile_id(self) -> str:
        """Cache-key identity (alias of ``user_id``)."""
        return self._user_id

    @property
    def revision(self) -> int:
        """Monotone mutation counter; part of the engine's cache key."""
        return self._revision

    @property
    def num_clicks(self) -> int:
        return len(self._clicks)

    @property
    def clicked_doc_ids(self) -> tuple[str, ...]:
        """Remembered clicks, oldest first."""
        return tuple(self._clicks)

    @property
    def node_counts(self) -> Mapping[str, int]:
        """The live union's node multiset (read-only view)."""
        return dict(self._counts)

    def record_click(self, doc_id: str, embedding: DocumentEmbedding) -> None:
        """Fold one clicked document's subgraph into the profile.

        Re-clicking a remembered document refreshes its recency (and its
        counts, should the document have been re-embedded since).  When
        the click window overflows ``max_clicks`` the oldest click's
        counts are subtracted back out of the union.
        """
        if doc_id in self._clicks:
            self._subtract(self._clicks.pop(doc_id))
        counts = dict(embedding.node_counts)
        self._clicks[doc_id] = counts
        self._counts.update(counts)
        while len(self._clicks) > self._max_clicks:
            _, evicted = self._clicks.popitem(last=False)
            self._subtract(evicted)
        self._revision += 1
        self._terms_cache = None

    def _subtract(self, counts: Mapping[str, int]) -> None:
        self._counts.subtract(counts)
        # Counter.subtract keeps zero/negative entries; drop them so the
        # union stays an exact multiset of the remembered clicks.
        for node in [n for n, c in self._counts.items() if c <= 0]:
            del self._counts[node]

    def bon_terms(self) -> tuple[str, ...]:
        """Context-channel terms: capped union nodes, canonical order.

        Deterministic for a given click history: the ``max_terms``
        highest-count nodes are selected (node-id ascending on ties),
        then emitted sorted by node id with each node repeated by its
        count — the same canonical shape as a query embedding's BON
        terms, so per-candidate score folds are order-stable.
        """
        cached = self._terms_cache
        if cached is not None and cached[0] == self._revision:
            return cached[1]
        selected = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        selected = sorted(selected[: self._max_terms])
        terms = tuple(
            node for node, count in selected for _ in range(count)
        )
        self._terms_cache = (self._revision, terms)
        return terms

    def as_dict(self) -> dict[str, object]:
        """Stats/diagnostics payload (not a serialization format)."""
        return {
            "user_id": self._user_id,
            "revision": self._revision,
            "clicks": len(self._clicks),
            "distinct_nodes": len(self._counts),
            "max_clicks": self._max_clicks,
            "max_terms": self._max_terms,
        }
