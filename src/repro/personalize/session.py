"""Conversational session state: the accumulated query subgraph.

Exploratory search is rarely one-shot (Schneider et al., PAPERS.md): a
follow-up query like *"what about the peace talks?"* should re-anchor on
the entities of the turns before it.  A :class:`Session` accumulates the
query subgraph across turns — each :meth:`advance` folds the turn's
query embedding (graphs **and** node counts) into the running context —
and contributes that context to ranking through the same ``gamma``
fusion channel a :class:`repro.personalize.profile.UserProfile` uses.

The retained segment graphs additionally let the LCAG path explanations
speak with session context: :meth:`dialogue_embedding` unions the
accumulated graphs with the current query's, producing an embedding the
engine's ``explanation``/``explain_verbalized`` machinery consumes
directly, so the rendered paths read as a dialogue summary of the whole
session, not just the last utterance.
"""

from __future__ import annotations

from collections import Counter

from repro.core.ancestor_graph import CommonAncestorGraph
from repro.core.document_embedding import DocumentEmbedding, union_embedding

#: Default bound on remembered turns per session.
DEFAULT_MAX_TURNS = 16
#: Default bound on distinct context nodes contributed to ranking.
DEFAULT_MAX_TERMS = 128


class _Turn:
    __slots__ = ("query", "counts", "graphs")

    def __init__(
        self,
        query: str,
        counts: dict[str, int],
        graphs: tuple[CommonAncestorGraph, ...],
    ) -> None:
        self.query = query
        self.counts = counts
        self.graphs = graphs


class Session:
    """Bounded accumulated query subgraph across conversation turns."""

    def __init__(
        self,
        session_id: str,
        max_turns: int = DEFAULT_MAX_TURNS,
        max_terms: int = DEFAULT_MAX_TERMS,
    ) -> None:
        if max_turns <= 0:
            raise ValueError("max_turns must be positive")
        if max_terms <= 0:
            raise ValueError("max_terms must be positive")
        self._session_id = session_id
        self._max_turns = max_turns
        self._max_terms = max_terms
        self._turns: list[_Turn] = []
        self._counts: Counter[str] = Counter()
        self._revision = 0
        self._terms_cache: tuple[int, tuple[str, ...]] | None = None

    @property
    def session_id(self) -> str:
        return self._session_id

    @property
    def revision(self) -> int:
        """Monotone mutation counter; part of the engine's cache key."""
        return self._revision

    @property
    def num_turns(self) -> int:
        return len(self._turns)

    @property
    def turns(self) -> tuple[str, ...]:
        """The remembered turn queries, oldest first."""
        return tuple(turn.query for turn in self._turns)

    def advance(self, query: str, embedding: DocumentEmbedding) -> None:
        """Fold one turn's query embedding into the session context.

        Turns beyond ``max_turns`` age out oldest-first, subtracting
        their node counts back out so the context tracks the window
        exactly.
        """
        counts = dict(embedding.node_counts)
        self._turns.append(_Turn(query, counts, tuple(embedding.graphs)))
        self._counts.update(counts)
        while len(self._turns) > self._max_turns:
            evicted = self._turns.pop(0)
            self._counts.subtract(evicted.counts)
            for node in [n for n, c in self._counts.items() if c <= 0]:
                del self._counts[node]
        self._revision += 1
        self._terms_cache = None

    def reset(self) -> None:
        """Forget all accumulated context (new conversation thread)."""
        self._turns.clear()
        self._counts.clear()
        self._revision += 1
        self._terms_cache = None

    def bon_terms(self) -> tuple[str, ...]:
        """Context-channel terms, canonical sorted order with repeats.

        Same selection rule as :meth:`UserProfile.bon_terms`: the
        ``max_terms`` highest-count nodes (node-id tie-break), emitted
        sorted by node id repeated by count.
        """
        cached = self._terms_cache
        if cached is not None and cached[0] == self._revision:
            return cached[1]
        selected = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        selected = sorted(selected[: self._max_terms])
        terms = tuple(
            node for node, count in selected for _ in range(count)
        )
        self._terms_cache = (self._revision, terms)
        return terms

    def dialogue_embedding(
        self, query_embedding: DocumentEmbedding | None = None
    ) -> DocumentEmbedding:
        """Session context (optionally ∪ the current query) as an embedding.

        Feeding this to the engine's explanation machinery renders LCAG
        paths against the *whole conversation's* subgraph, so the
        verbalized connections double as dialogue-style explanations.
        """
        graphs: list[CommonAncestorGraph] = []
        for turn in self._turns:
            graphs.extend(turn.graphs)
        if query_embedding is not None:
            graphs.extend(query_embedding.graphs)
        return union_embedding(f"__session__{self._session_id}", tuple(graphs))

    def as_dict(self) -> dict[str, object]:
        """Stats/diagnostics payload (not a serialization format)."""
        return {
            "session_id": self._session_id,
            "revision": self._revision,
            "turns": len(self._turns),
            "distinct_nodes": len(self._counts),
            "max_turns": self._max_turns,
            "max_terms": self._max_terms,
        }
