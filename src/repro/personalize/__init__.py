"""Personalized and session-aware search state.

The third channel of Equation 3's fusion (``gamma``, see
:mod:`repro.search.fusion`) blends a *context subgraph* into ranking:

* :class:`UserProfile` — the union subgraph of a user's click history
  (LKPNR-style personalization), incrementally updatable per click;
* :class:`Session` — the accumulated query subgraph of a conversational
  session (Schneider et al.), re-anchoring each follow-up turn and
  doubling as a dialogue-style explanation context.

Both expose ``bon_terms()`` — node ids scored on the engine's node
index — so the pruned ranker, planner, and deadline plumbing are reused
unchanged.  :class:`ProfileStore` / :class:`SessionStore` are the
bounded, thread-safe LRU stores the HTTP server serves from.
"""

from repro.personalize.profile import UserProfile
from repro.personalize.session import Session
from repro.personalize.store import ProfileStore, SessionStore

__all__ = [
    "UserProfile",
    "Session",
    "ProfileStore",
    "SessionStore",
]
