"""Bounded, thread-safe LRU stores for profiles and sessions.

The HTTP server keeps per-user and per-session state here.  Both stores
are strict LRUs: capacity overflow evicts the least-recently-*used*
entry (reads refresh recency), and every eviction/creation/lookup is
counted so :class:`repro.obs.PersonalizationInstruments` can export the
``newslink_session_*`` / ``newslink_profile_*`` gauges and counters.

``ProfileStore.get`` passes through the ``session.profile_load`` fault
point (:mod:`repro.reliability.faults`) so the failure-injection suite
can drill a profile-backend outage: an injected fault surfaces as a 500
from ``/search`` without poisoning the store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterator

from repro.personalize.profile import UserProfile
from repro.personalize.session import Session
from repro.reliability import faults

#: Default bound on resident profiles / sessions.
DEFAULT_CAPACITY = 1024


class _LruStore:
    """Shared LRU mechanics; subclasses provide the entry factory."""

    def __init__(self, capacity: int, factory: Callable[[str], object]) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._factory = factory
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()
        self._created = 0
        self._evictions = 0
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(tuple(self._entries))

    @property
    def capacity(self) -> int:
        return self._capacity

    def peek(self, key: str):
        """Lookup without creating (returns None when absent)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return entry

    def get_or_create(self, key: str):
        """Lookup, creating (and possibly evicting LRU) on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
            entry = self._factory(key)
            self._entries[key] = entry
            self._created += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return entry

    def discard(self, key: str) -> bool:
        """Drop an entry; returns whether it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def values_snapshot(self) -> tuple:
        """Resident entries, without touching recency or hit counters.

        For observability collectors: scrapes must not perturb the LRU
        order or the lookup statistics they report.
        """
        with self._lock:
            return tuple(self._entries.values())

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for observability collectors."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "created": self._created,
                "evictions": self._evictions,
                "hits": self._hits,
                "misses": self._misses,
            }


class ProfileStore(_LruStore):
    """LRU of :class:`UserProfile`, keyed by user id."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_clicks: int | None = None,
        max_terms: int | None = None,
    ) -> None:
        kwargs: dict[str, int] = {}
        if max_clicks is not None:
            kwargs["max_clicks"] = max_clicks
        if max_terms is not None:
            kwargs["max_terms"] = max_terms
        super().__init__(capacity, lambda uid: UserProfile(uid, **kwargs))

    def get(self, user_id: str) -> UserProfile:
        """The user's profile, created on first sight.

        Fault point ``session.profile_load`` fires here — the first
        touch of per-user state on a request path.
        """
        if faults.ACTIVE:
            faults.fire("session.profile_load")
        return self.get_or_create(user_id)  # type: ignore[return-value]


class SessionStore(_LruStore):
    """LRU of :class:`Session`, keyed by session id.

    Ids are minted by :meth:`create` from a monotone counter — opaque,
    process-local, and deterministic (no wall clock, no randomness), so
    tests and replayed traffic see stable ids.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_turns: int | None = None,
        max_terms: int | None = None,
    ) -> None:
        kwargs: dict[str, int] = {}
        if max_turns is not None:
            kwargs["max_turns"] = max_turns
        if max_terms is not None:
            kwargs["max_terms"] = max_terms
        super().__init__(capacity, lambda sid: Session(sid, **kwargs))
        self._next_id = 0

    def create(self) -> Session:
        """Mint a new session with a fresh id."""
        with self._lock:
            self._next_id += 1
            session_id = f"s{self._next_id:06d}"
        return self.get_or_create(session_id)  # type: ignore[return-value]

    def get(self, session_id: str) -> Session | None:
        """Lookup an existing session (None when unknown/evicted)."""
        return self.peek(session_id)  # type: ignore[return-value]
