"""Lightweight per-query tracing.

A :class:`Tracer` produces :class:`Span` records for the full query path
(nlp → ne → ns, cache hit/miss, pruned vs exhaustive vs degraded) and
retains the most recent completed root spans in a ring buffer, exposed by
the server's ``/stats`` endpoint and the CLI's ``search --stats``.

Spans nest through a thread-local stack (the HTTP server is threaded):
``tracer.span(...)`` inside an active span attaches a child.  Stage
timings flow in from :class:`repro.utils.timing.TimingBreakdown` — a
breakdown linked to a span forwards every ``add`` as a stage record, so
the long-standing NLP/NE/NS component timings *are* the span's stages
(same clock, same numbers, one instrumentation point).

When the tracer is disabled, :meth:`Tracer.span` returns a shared no-op
span whose methods do nothing, so instrumented code needs no branches.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable


class Span:
    """One timed operation: attributes, stage timings, child spans."""

    __slots__ = (
        "name",
        "start",
        "duration",
        "attributes",
        "stages",
        "children",
        "_tracer",
    )

    def __init__(
        self, tracer: "Tracer | None", name: str, attributes: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.start = 0.0
        self.duration = 0.0
        self.attributes = attributes
        self.stages: dict[str, float] = {}
        self.children: list[Span] = []

    def __bool__(self) -> bool:
        return True

    def annotate(self, key: str, value: Any) -> None:
        """Attach one attribute (overwrites an existing key)."""
        self.attributes[key] = value

    def record_stage(self, component: str, seconds: float) -> None:
        """Accumulate ``seconds`` of work into a named stage."""
        self.stages[component] = self.stages.get(component, 0.0) + seconds

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            self.start = tracer._clock()
            tracer._push(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        if tracer is not None:
            self.duration = tracer._clock() - self.start
            tracer._pop(self)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able trace record (durations in milliseconds)."""
        record: dict[str, Any] = {
            "name": self.name,
            "duration_ms": self.duration * 1000.0,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.stages:
            record["stages_ms"] = {
                stage: seconds * 1000.0
                for stage, seconds in self.stages.items()
            }
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def annotate(self, key: str, value: Any) -> None:
        pass

    def record_stage(self, component: str, seconds: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and retains the last ``capacity`` completed roots."""

    def __init__(
        self,
        capacity: int = 64,
        enabled: "Callable[[], bool] | bool" = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._capacity = capacity
        self._enabled = enabled
        self._clock = clock
        self._records: deque[dict[str, Any]] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        """Whether spans record (may be delegated to a registry switch)."""
        flag = self._enabled
        return flag() if callable(flag) else bool(flag)

    def span(self, name: str, **attributes: Any) -> "Span | _NullSpan":
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled or self._capacity <= 0:
            return NULL_SPAN
        return Span(self, name, attributes)

    @property
    def current(self) -> "Span | None":
        """The innermost active span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        # Unwind to this span (defensive against mismatched exits).
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            with self._lock:
                self._records.append(span.to_dict())

    def records(self) -> list[dict[str, Any]]:
        """The retained trace records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop every retained record."""
        with self._lock:
            self._records.clear()
