"""The engine's metric catalogue and silo collectors.

:class:`EngineInstruments` is the one object the engine touches on the
query path: it pre-registers every metric (so hot-path calls are plain
attribute access, no name lookups) and owns the :class:`Tracer`.

Two publication styles, matching the cost profile of each source:

* **Event-driven** — latencies and cache lookups are observed inline as
  they happen (histograms need the individual samples).  Every such call
  is a no-op while the registry is disabled.
* **Collector-driven** — the long-standing stats silos (``QueryStats``,
  ``SearchStats``, ``CacheStats``, ``IndexReport``) stay the source of
  truth; a scrape-time collector copies their current totals into
  registry counters/gauges.  The hot path pays nothing beyond the
  counter increments those silos always did.

The collector holds the engine by weak reference so instrumentation
never extends an engine's lifetime; once the engine is gone the
collector unregisters itself on the next scrape.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.pipeline import IngestPipeline
    from repro.search.engine import NewsLinkEngine
    from repro.serving.coordinator import Coordinator

#: Buckets for ingest→searchable freshness: spans the healthy sub-second
#: apply path up to minutes of backlog / post-crash recovery debt.
FRESHNESS_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

#: Buckets for single-segment ``G*`` embedding time (generally slower
#: than whole-query serving, so the range shifts up).
EMBED_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def embed_histogram(registry: MetricsRegistry):
    """The canonical ``newslink_embed_seconds`` histogram on ``registry``.

    Shared by :class:`EngineInstruments` and the forked indexing workers
    so worker-recorded samples merge into the very same metric.
    """
    return registry.histogram(
        "newslink_embed_seconds",
        "Wall-clock seconds per document NE stage (G* searches)",
        buckets=EMBED_BUCKETS,
    )


class EngineInstruments:
    """Metric handles + tracer for one engine (see module docstring)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        trace_capacity: int = 64,
    ) -> None:
        self.registry = registry
        self.tracer = Tracer(
            capacity=trace_capacity, enabled=lambda: registry.enabled
        )
        self.query_latency = registry.histogram(
            "newslink_query_latency_seconds",
            "Per-query wall-clock latency by stage "
            "(total, and the nlp/ne/ns components)",
            labelnames=("stage",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.queries = registry.counter(
            "newslink_queries_total",
            "Ranked queries served, by serving path "
            "(pruned, exhaustive, degraded)",
            labelnames=("path",),
        )
        self.query_cache_lookups = registry.counter(
            "newslink_query_cache_lookups_total",
            "Query-embedding LRU lookups by result (hit, miss)",
            labelnames=("result",),
        )
        self.cache_invalidations = registry.counter(
            "newslink_cache_invalidations_total",
            "Cache entries flushed: knowledge-graph version changes and "
            "query-LRU capacity evictions",
            labelnames=("cache",),
        )
        self.embed_seconds = embed_histogram(registry)
        self.index_load_seconds = registry.gauge(
            "newslink_index_load_seconds",
            "Wall-clock seconds of the most recent load_index, "
            "by load mode (mmap, heap)",
            labelnames=("mode",),
        )
        self.index_bytes = registry.gauge(
            "newslink_index_bytes",
            "On-disk size in bytes of the most recently loaded index file",
        )
        self.index_load_fallbacks = registry.counter(
            "newslink_index_load_fallback_total",
            "Loads where mmap was requested but the heap loader ran, "
            "by reason (gzip, legacy_format)",
            labelnames=("reason",),
        )
        # Collector-driven (silo-backed); handles kept for the collector.
        self._pruning = registry.counter(
            "newslink_query_pruning_total",
            "Query-serving work counters from QueryStats "
            "(matching_docs, candidates_examined, docs_pruned, "
            "postings_advanced, cursor_skips, blocks_skipped)",
            labelnames=("counter",),
        )
        self._planner_decisions = registry.counter(
            "newslink_planner_decisions_total",
            "Cost-based query planner path decisions "
            "(ranking='auto' queries only)",
            labelnames=("path",),
        )
        self._personalized = registry.counter(
            "newslink_personalized_queries_total",
            "Queries ranked with an active profile/session context "
            "channel (gamma > 0 and non-empty context terms)",
        )
        self._gstar = registry.counter(
            "newslink_gstar_total",
            "Aggregate G* search counters from SearchStats "
            "(pops, candidates, relaxations, heap_pushes)",
            labelnames=("counter",),
        )
        self._segment_cache = registry.counter(
            "newslink_segment_cache_lookups_total",
            "Segment-embedding cache lookups by result (hit, miss)",
            labelnames=("result",),
        )
        self._indexed_docs = registry.gauge(
            "newslink_indexed_documents",
            "Documents currently indexed",
        )
        self._kg_version = registry.gauge(
            "newslink_kg_version",
            "Knowledge-graph mutation counter the engine last observed",
        )
        self._index_report = registry.counter(
            "newslink_index_pipeline_total",
            "Parallel indexing counters from the last IndexReport "
            "(dedup_hits, worker_retries, pool_rebuilds, "
            "serial_fallback_chunks)",
            labelnames=("counter",),
        )
        self._index_workers = registry.gauge(
            "newslink_index_workers",
            "Worker processes used by the most recent index_corpus run",
        )

    @property
    def enabled(self) -> bool:
        """The hot-path switch (delegates to the registry)."""
        return self.registry.enabled

    def bind(self, engine: "NewsLinkEngine") -> None:
        """Register the scrape-time collector for ``engine``'s silos."""
        engine_ref = weakref.ref(engine)

        def collect() -> bool | None:
            target = engine_ref()
            if target is None:
                return False  # engine gone: unregister this collector
            query_stats = target.query_stats
            self.queries.set(query_stats.pruned_queries, path="pruned")
            self.queries.set(query_stats.fallback_queries, path="exhaustive")
            self.queries.set(query_stats.degraded_queries, path="degraded")
            for counter in (
                "matching_docs",
                "candidates_examined",
                "docs_pruned",
                "postings_advanced",
                "cursor_skips",
                "blocks_skipped",
            ):
                self._pruning.set(
                    getattr(query_stats, counter), counter=counter
                )
            self._planner_decisions.set(
                query_stats.planner_pruned, path="pruned"
            )
            self._planner_decisions.set(
                query_stats.planner_exhaustive, path="exhaustive"
            )
            self._personalized.set(query_stats.personalized_queries)
            search_stats = target.search_stats
            for counter in ("pops", "candidates", "relaxations", "heap_pushes"):
                self._gstar.set(
                    getattr(search_stats, counter), counter=counter
                )
            cache_stats = target.cache_stats
            if cache_stats is not None:
                self._segment_cache.set(cache_stats.hits, result="hit")
                self._segment_cache.set(cache_stats.misses, result="miss")
            self._indexed_docs.set(target.num_indexed)
            self._kg_version.set(target.graph.version)
            report = target.last_index_report
            if report is not None:
                self._index_workers.set(report.workers)
                self._index_report.set(
                    report.dedup.hits, counter="dedup_hits"
                )
                self._index_report.set(
                    report.worker_retries, counter="worker_retries"
                )
                self._index_report.set(
                    report.pool_rebuilds, counter="pool_rebuilds"
                )
                self._index_report.set(
                    report.serial_fallback_chunks,
                    counter="serial_fallback_chunks",
                )
            return None

        self.registry.add_collector(collect)


class PersonalizationInstruments:
    """Metric handles for the profile/session stores.

    Entirely collector-driven: the LRU stores
    (:mod:`repro.personalize.store`) count their own hits, misses,
    creations and evictions under their locks; a scrape-time collector
    copies the snapshots into the ``newslink_session_*`` /
    ``newslink_profile_*`` series.  Session-turn totals are derived from
    the resident sessions at scrape time.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._sessions_active = registry.gauge(
            "newslink_sessions_active",
            "Sessions currently resident in the session store",
        )
        self._session_store = registry.counter(
            "newslink_session_store_total",
            "Session-store lifecycle events "
            "(created, evicted, hit, miss)",
            labelnames=("event",),
        )
        self._session_turns = registry.gauge(
            "newslink_session_turns",
            "Accumulated turns across all resident sessions",
        )
        self._profiles_active = registry.gauge(
            "newslink_profiles_active",
            "Profiles currently resident in the profile store",
        )
        self._profile_cache = registry.counter(
            "newslink_profile_cache_total",
            "Profile-store lifecycle events "
            "(created, evicted, hit, miss)",
            labelnames=("event",),
        )
        self._profile_clicks = registry.gauge(
            "newslink_profile_clicks",
            "Remembered clicks across all resident profiles",
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def bind(self, sessions, profiles=None) -> None:
        """Register the scrape-time collector for the stores' counters."""
        sessions_ref = weakref.ref(sessions)
        profiles_ref = weakref.ref(profiles) if profiles is not None else None

        def collect() -> bool | None:
            session_store = sessions_ref()
            if session_store is None:
                return False
            snap = session_store.snapshot()
            self._sessions_active.set(snap["size"])
            self._session_store.set(snap["created"], event="created")
            self._session_store.set(snap["evictions"], event="evicted")
            self._session_store.set(snap["hits"], event="hit")
            self._session_store.set(snap["misses"], event="miss")
            self._session_turns.set(
                sum(s.num_turns for s in session_store.values_snapshot())
            )
            if profiles_ref is not None:
                profile_store = profiles_ref()
                if profile_store is not None:
                    snap = profile_store.snapshot()
                    self._profiles_active.set(snap["size"])
                    self._profile_cache.set(snap["created"], event="created")
                    self._profile_cache.set(snap["evictions"], event="evicted")
                    self._profile_cache.set(snap["hits"], event="hit")
                    self._profile_cache.set(snap["misses"], event="miss")
                    self._profile_clicks.set(
                        sum(
                            p.num_clicks
                            for p in profile_store.values_snapshot()
                        )
                    )
            return None

        self.registry.add_collector(collect)


class IngestInstruments:
    """Metric handles for the streaming-ingestion pipeline.

    Event-driven: the freshness SLO histogram
    (``newslink_ingest_freshness_seconds`` — seconds from source fetch to
    searchable, observed as each delta lands in the live engine,
    including replayed deltas after a crash so recovery debt is visible
    in the SLO).  Collector-driven: everything else — WAL, DLQ, breaker,
    resolver and checkpoint totals, whose source of truth is pipeline
    state — scraped, never written on the apply path.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.freshness = registry.histogram(
            "newslink_ingest_freshness_seconds",
            "Seconds from source fetch to searchable in the live engine "
            "(the freshness SLO; includes post-crash replay debt)",
            buckets=FRESHNESS_BUCKETS,
        )
        # Collector-driven (pipeline-state-backed).
        self._events = registry.counter(
            "newslink_ingest_events_total",
            "Feed events applied to the live engine, by source and kind "
            "(add, remove, entity)",
            labelnames=("source", "kind"),
        )
        self._wal_records = registry.counter(
            "newslink_ingest_wal_records_total",
            "Records appended to the write-ahead log",
        )
        self._wal_syncs = registry.counter(
            "newslink_ingest_wal_syncs_total",
            "fsync batches flushed to the write-ahead log",
        )
        self._wal_bytes = registry.gauge(
            "newslink_ingest_wal_bytes",
            "Current on-disk size of the write-ahead log",
        )
        self._wal_segments = registry.gauge(
            "newslink_ingest_wal_segments",
            "Write-ahead log segments currently on disk",
        )
        self._dlq = registry.counter(
            "newslink_ingest_dlq_total",
            "Events quarantined to the dead-letter queue",
        )
        self._fetch_failures = registry.counter(
            "newslink_ingest_fetch_failures_total",
            "Source fetch rounds that failed after retries, by source",
            labelnames=("source",),
        )
        self._breaker_open = registry.gauge(
            "newslink_ingest_breaker_open",
            "1 while a source's circuit breaker is open, else 0",
            labelnames=("source",),
        )
        self._breaker_transitions = registry.counter(
            "newslink_ingest_breaker_transitions_total",
            "Circuit-breaker state entries, by source and entered state",
            labelnames=("source", "state"),
        )
        self._resolutions = registry.counter(
            "newslink_ingest_resolution_total",
            "Entity-resolution gate decisions "
            "(exact, alias, near_duplicate, new)",
            labelnames=("decision",),
        )
        self._checkpoints = registry.counter(
            "newslink_ingest_checkpoints_total",
            "Compactions committed (snapshot + manifest + WAL truncation)",
        )
        self._generation = registry.gauge(
            "newslink_ingest_generation",
            "Compaction generation of the current snapshot",
        )
        self._recovery_seconds = registry.gauge(
            "newslink_ingest_recovery_seconds",
            "Wall-clock seconds the most recent open() spent recovering "
            "(snapshot load + WAL replay)",
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def bind(self, pipeline: "IngestPipeline") -> None:
        """Register the scrape-time collector for the pipeline's state."""
        ref = weakref.ref(pipeline)

        def collect() -> bool | None:
            target = ref()
            if target is None:
                return False
            for name, state in target.source_states.items():
                for kind, total in state.applied_by_kind.items():
                    self._events.set(total, source=name, kind=kind)
                self._fetch_failures.set(state.fetch_failures, source=name)
                breaker = state.breaker
                self._breaker_open.set(
                    1.0 if breaker.state == "open" else 0.0, source=name
                )
                for entered, total in breaker.transitions.items():
                    self._breaker_transitions.set(
                        total, source=name, state=entered
                    )
            wal = target.wal
            self._wal_records.set(wal.appends_total)
            self._wal_syncs.set(wal.syncs_total)
            self._wal_bytes.set(wal.size_bytes)
            self._wal_segments.set(wal.segment_count)
            self._dlq.set(len(target.dlq))
            for decision, total in target.resolver.decisions.items():
                self._resolutions.set(total, decision=decision)
            self._checkpoints.set(target.checkpoints_total)
            self._generation.set(target.generation)
            self._recovery_seconds.set(target.last_recovery_seconds)
            return None

        self.registry.add_collector(collect)


class ServingInstruments:
    """Metric handles for the scatter-gather coordinator.

    Event-driven: per-request latency by stage (embed → scatter →
    total) and an outcome counter (served / degraded / partial).
    Collector-driven: admission-control depth gauges and shed/worker
    failure totals, whose sources of truth are the
    :class:`~repro.serving.admission.AdmissionController` snapshot and
    the shard group — scraped, never written on the hot path.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.request_latency = registry.histogram(
            "newslink_serving_latency_seconds",
            "Coordinator wall-clock per logical query by stage "
            "(embed, scatter, total)",
            labelnames=("stage",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.requests = registry.counter(
            "newslink_serving_requests_total",
            "Logical queries by outcome "
            "(served, degraded, partial, shed)",
            labelnames=("outcome",),
        )
        # Collector-driven (silo-backed); handles kept for the collector.
        self._inflight = registry.gauge(
            "newslink_serving_inflight",
            "Queries currently executing in the coordinator",
        )
        self._queued = registry.gauge(
            "newslink_serving_queued",
            "Queries currently waiting for an admission slot",
        )
        self._shed = registry.counter(
            "newslink_serving_shed_total",
            "Queries rejected by admission control, by reason "
            "(queue_full, deadline)",
            labelnames=("reason",),
        )
        self._worker_failures = registry.counter(
            "newslink_serving_worker_failures_total",
            "Shard workers declared dead (crashes + gather timeouts)",
        )
        self._live_workers = registry.gauge(
            "newslink_serving_live_workers",
            "Shard worker processes currently believed alive",
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def bind(self, coordinator: "Coordinator") -> None:
        """Register the scrape-time collector for the coordinator's silos."""
        ref = weakref.ref(coordinator)

        def collect() -> bool | None:
            target = ref()
            if target is None:
                return False
            admission = target.admission.snapshot()
            self._inflight.set(admission["inflight"])
            self._queued.set(admission["queued"])
            for reason, total in admission["shed"].items():
                self._shed.set(total, reason=reason)
            group = target.shard_group
            self._worker_failures.set(group.worker_failures)
            self._live_workers.set(group.live_workers())
            return None

        self.registry.add_collector(collect)
