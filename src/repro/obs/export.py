"""Exporters: Prometheus text format, JSON stats view, and a validator.

``render_prometheus`` turns a registry snapshot into the Prometheus
text exposition format (version 0.0.4) served by the HTTP server's
``/metrics`` endpoint; ``render_json`` produces the ``/stats`` view.
``validate_prometheus_text`` is a small grammar checker used by the CI
scrape step and the server tests — it parses every line and
cross-checks histogram invariants, so a formatting regression fails
fast without needing ``promtool`` in the image.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.obs.metrics import Snapshot

#: Content type the /metrics endpoint must declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames: list[str], values: list[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def render_prometheus(snapshot: Snapshot) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name, entry in snapshot.get("counters", {}).items():
        lines.append(f"# HELP {name} {_escape_help(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} counter")
        for values, value in entry["samples"]:
            labels = _labels_text(entry["labelnames"], values)
            lines.append(f"{name}{labels} {_format_value(value)}")
    for name, entry in snapshot.get("gauges", {}).items():
        lines.append(f"# HELP {name} {_escape_help(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} gauge")
        for values, value in entry["samples"]:
            labels = _labels_text(entry["labelnames"], values)
            lines.append(f"{name}{labels} {_format_value(value)}")
    for name, entry in snapshot.get("histograms", {}).items():
        lines.append(f"# HELP {name} {_escape_help(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} histogram")
        bucket_bounds = [*entry["buckets"], math.inf]
        for values, sample in entry["samples"]:
            cumulative = 0
            for bound, count in zip(bucket_bounds, sample["counts"]):
                cumulative += count
                labels = _labels_text(
                    [*entry["labelnames"], "le"],
                    [*values, _format_value(bound)],
                )
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _labels_text(entry["labelnames"], values)
            lines.append(f"{name}_sum{labels} {_format_value(sample['sum'])}")
            lines.append(f"{name}_count{labels} {sample['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(snapshot: Snapshot) -> dict[str, Any]:
    """A flat, human-scannable JSON view of the snapshot.

    Counters and gauges become ``name{label=value}: number`` entries;
    histograms expose count / sum / mean plus the raw bucket counts.
    """
    view: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in ("counters", "gauges"):
        for name, entry in snapshot.get(kind, {}).items():
            for values, value in entry["samples"]:
                labels = _labels_text(entry["labelnames"], values)
                view[kind][f"{name}{labels}"] = value
    for name, entry in snapshot.get("histograms", {}).items():
        for values, sample in entry["samples"]:
            labels = _labels_text(entry["labelnames"], values)
            count = sample["count"]
            view["histograms"][f"{name}{labels}"] = {
                "count": count,
                "sum": sample["sum"],
                "mean": sample["sum"] / count if count else 0.0,
                "buckets": list(sample["counts"]),
                "bucket_bounds": list(entry["buckets"]),
            }
    return view


def validate_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse Prometheus text format, raising ``ValueError`` on any flaw.

    Checks the line grammar, TYPE declarations, label syntax, numeric
    values, and histogram invariants (``le`` present, cumulative bucket
    counts non-decreasing, ``+Inf`` bucket equal to ``_count``).
    Returns ``{metric_name: {"type": ..., "samples": [(labels, value)]}}``
    for callers that want to assert on scraped values.
    """
    metrics: dict[str, dict[str, Any]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ValueError(
                    f"line {lineno}: invalid metric name {parts[2]!r}"
                )
            if parts[2] in metrics:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                )
            metrics[parts[2]] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment: {line!r}")
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in metrics:
                base = name[: -len(suffix)]
                break
        if base not in metrics:
            raise ValueError(
                f"line {lineno}: sample {name!r} precedes its TYPE line"
            )
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_labels(raw_labels, lineno):
                pair_match = _LABEL_RE.match(pair)
                if not pair_match:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
                labels[pair_match.group(1)] = pair_match.group(2)
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        else:
            try:
                value = float(raw_value)
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: non-numeric value {raw_value!r}"
                ) from exc
        if metrics[base]["type"] == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise ValueError(
                    f"line {lineno}: histogram bucket without le label"
                )
        metrics[base]["samples"].append((name, labels, value))
    _check_histograms(metrics)
    return metrics


def _split_labels(raw: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return parts


def _check_histograms(metrics: dict[str, dict[str, Any]]) -> None:
    for base, entry in metrics.items():
        if entry["type"] != "histogram":
            continue
        series: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        for name, labels, value in entry["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name.endswith("_bucket"):
                le = labels["le"]
                bound = math.inf if le == "+Inf" else float(le)
                series.setdefault(key, []).append((bound, value))
            elif name.endswith("_count"):
                counts[key] = value
        for key, buckets in series.items():
            ordered = sorted(buckets)
            values = [count for _, count in ordered]
            if values != sorted(values):
                raise ValueError(
                    f"{base}: bucket counts not cumulative for {key}"
                )
            if not ordered or ordered[-1][0] != math.inf:
                raise ValueError(f"{base}: missing +Inf bucket for {key}")
            if key in counts and ordered[-1][1] != counts[key]:
                raise ValueError(
                    f"{base}: +Inf bucket != _count for {key}"
                )
