"""``repro.obs`` — the unified, dependency-free observability layer.

One subsystem replaces four disconnected stats silos as the way to
*read* the serving system (the silos keep their APIs and stay the
source of truth; they publish into the registry):

* :class:`MetricsRegistry` — process-wide counters, gauges and
  fixed-bucket histograms; cheap no-op when disabled; snapshots merge
  associatively/commutatively across worker processes.
* :class:`Tracer` / :class:`Span` — per-query trace records covering
  the full query path (nlp → ne → ns, cache hit/miss, pruned vs
  exhaustive vs degraded serving).
* exporters — Prometheus text (``/metrics``), JSON (``/stats``), and a
  text-format validator used by CI.

See ``docs/observability.md`` for the metric catalogue and scrape
examples.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    render_json,
    render_prometheus,
    validate_prometheus_text,
)
from repro.obs.instruments import (
    EngineInstruments,
    IngestInstruments,
    PersonalizationInstruments,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    diff_snapshots,
    disabled_registry,
    get_registry,
    merge_snapshots,
    set_registry,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "EngineInstruments",
    "Gauge",
    "Histogram",
    "IngestInstruments",
    "MetricsRegistry",
    "NULL_SPAN",
    "PersonalizationInstruments",
    "Snapshot",
    "Span",
    "Tracer",
    "diff_snapshots",
    "disabled_registry",
    "get_registry",
    "merge_snapshots",
    "render_json",
    "render_prometheus",
    "set_registry",
    "validate_prometheus_text",
]
