"""A dependency-free, process-wide metrics registry.

The serving system accumulated four disconnected stats silos
(``QueryStats``, ``SearchStats``, ``CacheStats``, ``IndexReport``) with
no way to scrape, aggregate, or correlate them.  This module is the
unification point: a :class:`MetricsRegistry` holding three Prometheus
metric kinds —

* **counters** — monotonically increasing totals;
* **gauges** — point-in-time values (index size, KG version);
* **histograms** — fixed-bucket latency/size distributions.

Design constraints, in priority order:

1. **Cheap when disabled.**  Every mutation starts with one attribute
   read and one branch (``if not registry.enabled: return``) — a
   disabled registry adds no locks, no allocation and no dict work to
   the query hot path (``benchmarks/bench_obs_overhead.py`` proves the
   whole instrumented engine stays within 5% of the bare path).
2. **Mergeable.**  A registry snapshot is a plain JSON-able dict, and
   :func:`merge_snapshots` folds two of them together the way
   ``CacheStats.merge`` folds counters: counters and histogram buckets
   add, gauges take the max.  Merging is associative and commutative
   (property-tested), which is what lets the parallel indexer fold
   per-worker registries back into the parent in any completion order.
3. **Scrape-time collectors.**  The existing silos keep their APIs; a
   *collector* callback registered by the engine copies their current
   values into registry metrics when a snapshot is taken, so the hot
   path pays nothing for metrics whose source of truth already exists.

Thread safety: sample mutation and snapshotting are guarded by one lock
per registry; the ``enabled`` fast-path check is lock-free.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

#: Default latency buckets in seconds (sub-millisecond to multi-second),
#: chosen to straddle the engine's observed query-latency range.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: Snapshot type: a plain JSON-able dict (see :meth:`MetricsRegistry.snapshot`).
Snapshot = dict[str, Any]

_KINDS = ("counters", "gauges", "histograms")


class _Metric:
    """Shared machinery: label handling and the enabled fast path."""

    __slots__ = ("name", "help", "labelnames", "_registry", "_samples")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,  # noqa: A002 - mirrors the Prometheus field name
        labelnames: tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._samples: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        try:
            return tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                f"{self.name}: missing label {exc.args[0]!r}"
            ) from exc

    def value(self, **labels: object) -> Any:
        """The current sample for ``labels`` (0/None when never touched)."""
        return self._samples.get(self._key(labels))


class Counter(_Metric):
    """A monotonically increasing total."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (no-op while the registry is disabled)."""
        registry = self._registry
        if not registry._enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the total — for scrape-time collectors whose source
        of truth is an existing stats silo, not for hot-path use."""
        registry = self._registry
        if not registry._enabled:
            return
        with registry._lock:
            self._samples[self._key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return float(self._samples.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A point-in-time value (merges by max, see :func:`merge_snapshots`)."""

    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        registry = self._registry
        if not registry._enabled:
            return
        with registry._lock:
            self._samples[self._key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return float(self._samples.get(self._key(labels), 0.0))


class Histogram(_Metric):
    """A fixed-bucket distribution with a sum and a count.

    Buckets are *cumulative at export time* (Prometheus ``le`` format)
    but stored per-bucket so merging is a plain element-wise add.  The
    implicit ``+Inf`` bucket is the final slot.
    """

    __slots__ = ("buckets",)

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,  # noqa: A002
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"{name}: buckets must be non-empty, sorted and unique"
            )
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: object) -> None:
        registry = self._registry
        if not registry._enabled:
            return
        key = self._key(labels)
        slot = bisect_left(self.buckets, value)
        with registry._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = sample
            sample["counts"][slot] += 1
            sample["sum"] += value
            sample["count"] += 1

    def sample(self, **labels: object) -> dict | None:
        """The raw ``{"counts", "sum", "count"}`` record for ``labels``."""
        return self._samples.get(self._key(labels))


#: A collector runs at snapshot time and refreshes metrics whose source
#: of truth lives elsewhere.  Returning ``False`` unregisters it (used by
#: weakref-bound engine collectors once the engine is gone).
Collector = Callable[[], Any]


class MetricsRegistry:
    """A named family of counters, gauges and histograms.

    One process-wide default registry exists (:func:`get_registry`);
    engines default to it but accept a private registry for isolation
    (tests, multi-tenant processes).  Metric constructors are idempotent:
    asking for an existing name returns the existing metric, provided the
    kind and label names match.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Collector] = []

    # -- switches ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether mutations record (the hot-path fast check)."""
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- metric constructors (get-or-create) ---------------------------
    def _get(
        self, name: str, kind: type, factory: Callable[[], _Metric]
    ) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        """Get or create a counter."""
        names = tuple(labelnames)
        return self._get(  # type: ignore[return-value]
            name, Counter, lambda: Counter(self, name, help, names)
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        """Get or create a gauge."""
        names = tuple(labelnames)
        return self._get(  # type: ignore[return-value]
            name, Gauge, lambda: Gauge(self, name, help, names)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        names = tuple(labelnames)
        bucket_tuple = tuple(buckets)
        return self._get(  # type: ignore[return-value]
            name,
            Histogram,
            lambda: Histogram(self, name, help, names, bucket_tuple),
        )

    # -- collectors ----------------------------------------------------
    def add_collector(self, collector: Collector) -> Collector:
        """Register a scrape-time callback (see module docstring)."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        dead = [c for c in collectors if c() is False]
        if dead:
            with self._lock:
                self._collectors = [
                    c for c in self._collectors if c not in dead
                ]

    # -- snapshot & merge ----------------------------------------------
    def snapshot(self, run_collectors: bool = True) -> Snapshot:
        """A JSON-able, deterministic copy of every sample.

        Collectors run first (unless ``run_collectors=False``) so
        silo-backed metrics are current; they run even on a disabled
        registry *only if* it was ever enabled — on a disabled registry
        their ``set`` calls are no-ops anyway, so skipping them keeps
        disabled scrapes cheap and empty.
        """
        if run_collectors and self._enabled:
            self._run_collectors()
        snap: Snapshot = {kind: {} for kind in _KINDS}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                samples = sorted(
                    (list(key), _copy_sample(value))
                    for key, value in metric._samples.items()
                )
                entry: dict[str, Any] = {
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "samples": [list(pair) for pair in samples],
                }
                if isinstance(metric, Histogram):
                    entry["buckets"] = list(metric.buckets)
                    snap["histograms"][name] = entry
                elif isinstance(metric, Gauge):
                    snap["gauges"][name] = entry
                else:
                    snap["counters"][name] = entry
        return snap

    def merge(self, other: "Snapshot | MetricsRegistry") -> None:
        """Fold a snapshot (or another registry) into this registry.

        Counters and histogram buckets add; gauges take the max.  Metrics
        absent locally are created on the fly, so a parent can merge a
        worker registry without pre-declaring the worker's metrics.
        Merging bypasses the ``enabled`` switch: fold-in of already-paid
        work must not be lost because scraping is off right now.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, entry in snap.get("counters", {}).items():
            metric = self.counter(name, entry.get("help", ""), entry["labelnames"])
            with self._lock:
                for labels, value in entry["samples"]:
                    key = tuple(labels)
                    metric._samples[key] = metric._samples.get(key, 0.0) + value
        for name, entry in snap.get("gauges", {}).items():
            metric = self.gauge(name, entry.get("help", ""), entry["labelnames"])
            with self._lock:
                for labels, value in entry["samples"]:
                    key = tuple(labels)
                    current = metric._samples.get(key)
                    if current is None or value > current:
                        metric._samples[key] = value
        for name, entry in snap.get("histograms", {}).items():
            metric = self.histogram(
                name,
                entry.get("help", ""),
                entry["labelnames"],
                entry["buckets"],
            )
            if list(metric.buckets) != [float(b) for b in entry["buckets"]]:
                raise ValueError(
                    f"histogram {name!r}: bucket layout mismatch on merge"
                )
            with self._lock:
                for labels, sample in entry["samples"]:
                    key = tuple(labels)
                    local = metric._samples.get(key)
                    if local is None:
                        metric._samples[key] = _copy_sample(sample)
                        continue
                    for i, count in enumerate(sample["counts"]):
                        local["counts"][i] += count
                    local["sum"] += sample["sum"]
                    local["count"] += sample["count"]

    def reset(self) -> None:
        """Zero every sample (metric definitions and collectors survive)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._samples.clear()


def _copy_sample(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            "counts": list(value["counts"]),
            "sum": value["sum"],
            "count": value["count"],
        }
    return value


def merge_snapshots(left: Snapshot, right: Snapshot) -> Snapshot:
    """Merge two snapshots into a new one (associative and commutative).

    Counters and histogram counts/sums add exactly; gauges take the max.
    Like ``CacheStats.merge``, integer-valued counters merge exactly in
    any grouping or order — the hypothesis tests in
    ``tests/obs/test_metrics.py`` assert both laws.
    """
    registry = MetricsRegistry()
    registry.merge(left)
    registry.merge(right)
    return registry.snapshot(run_collectors=False)


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """The work recorded between two snapshots of the same registry.

    Counters and histogram samples subtract (clamped at zero); gauges
    take the ``after`` value.  Used by forked workers: each worker
    inherits the parent registry's accumulated samples at fork time, so
    the chunk result ships the *delta*, exactly like the worker-side
    ``SearchStats`` accounting.
    """
    delta: Snapshot = {kind: {} for kind in _KINDS}
    for name, entry in after.get("counters", {}).items():
        base = {
            tuple(labels): value
            for labels, value in before.get("counters", {})
            .get(name, {})
            .get("samples", [])
        }
        samples = []
        for labels, value in entry["samples"]:
            changed = value - base.get(tuple(labels), 0.0)
            if changed > 0:
                samples.append([labels, changed])
        if samples:
            delta["counters"][name] = {**entry, "samples": samples}
    for name, entry in after.get("gauges", {}).items():
        if entry["samples"]:
            delta["gauges"][name] = entry
    for name, entry in after.get("histograms", {}).items():
        base = {
            tuple(labels): sample
            for labels, sample in before.get("histograms", {})
            .get(name, {})
            .get("samples", [])
        }
        samples = []
        for labels, sample in entry["samples"]:
            prior = base.get(tuple(labels))
            if prior is None:
                samples.append([labels, _copy_sample(sample)])
                continue
            counts = [
                max(0, count - prior["counts"][i])
                for i, count in enumerate(sample["counts"])
            ]
            count = max(0, sample["count"] - prior["count"])
            if count:
                samples.append(
                    [
                        labels,
                        {
                            "counts": counts,
                            "sum": max(0.0, sample["sum"] - prior["sum"]),
                            "count": count,
                        },
                    ]
                )
        if samples:
            delta["histograms"][name] = {**entry, "samples": samples}
    return delta


# ----------------------------------------------------------------------
# process-wide default + the shared always-off registry
# ----------------------------------------------------------------------
_global_registry = MetricsRegistry()
_disabled_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default (returns the new one).

    Forked workers install a fresh registry at init so chunk deltas
    do not re-ship the parent's pre-fork samples.
    """
    global _global_registry
    _global_registry = registry
    return registry


def disabled_registry() -> MetricsRegistry:
    """A shared registry that is permanently off (the no-op sink)."""
    return _disabled_registry
