"""Command-line interface.

Subcommands::

    repro generate DIR [--dataset cnn|kaggle] [--scale S] — synthesize a
        dataset: knowledge graph (kg.json) + corpus (corpus.jsonl)
    repro index DIR [--tree] [--beta B]                   — build and save
        the NewsLink index (index.json) for a generated dataset
    repro search DIR QUERY [-k N] [--beta B] [--ranking M] [--explain]
                 [--deadline-ms MS] [--stats]             — query an
        indexed dataset and optionally print relationship paths and the
        query's metrics/trace summary
    repro evaluate DIR [-k N]                             — quick Lucene
        vs NewsLink comparison on the dataset's test split
    repro ingest DIR [--rounds N] [--sources rss,social,filings]
                 [--state-dir D]                          — stream
        simulated feeds through the durable ingestion pipeline (WAL +
        checkpoints under the state dir; rerunning resumes where the
        previous run — clean or crashed — left off)
    repro serve DIR [--ingest] [--profiles]               — serve over
        HTTP; with --ingest, feeds stream into the live engine while
        queries serve (freshness and breaker health on /stats); with
        --profiles, /click and /search?user= maintain per-user
        click-history profiles (single-engine serving only)

Run ``python -m repro <subcommand> --help`` for details.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config import EngineConfig, FusionConfig
from repro.data.datasets import cnn_like_config, kaggle_like_config, make_dataset
from repro.data.loaders import load_corpus_jsonl, save_corpus_jsonl
from repro.kg.io import load_graph_json, save_graph_json
from repro.search.engine import NewsLinkEngine

_KG_FILE = "kg.json"
_CORPUS_FILE = "corpus.jsonl"
_INDEX_FILE_V3 = "index.nlx"
_INDEX_FILE_V2 = "index.json"
#: Load-time probe order: v3 binary first (the default the index
#: command writes), then legacy JSON, then the gzipped variants.
_INDEX_CANDIDATES = (
    _INDEX_FILE_V3,
    _INDEX_FILE_V2,
    _INDEX_FILE_V3 + ".gz",
    _INDEX_FILE_V2 + ".gz",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NewsLink reproduction: KG-powered explainable news search",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesize a dataset (KG + news corpus)"
    )
    generate.add_argument("directory", type=Path)
    generate.add_argument(
        "--dataset", choices=("cnn", "kaggle"), default="cnn",
        help="which canned configuration to use",
    )
    generate.add_argument("--scale", type=float, default=0.5)

    index = subparsers.add_parser("index", help="embed + index the corpus")
    index.add_argument("directory", type=Path)
    index.add_argument("--beta", type=float, default=0.2)
    index.add_argument(
        "--tree", action="store_true", help="use the TreeEmb ablation embedder"
    )
    index.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for indexing (0 = one per core, 1 = serial)",
    )
    index.add_argument(
        "--gzip", action="store_true",
        help="write a gzipped index (smaller, but cannot be mmap-loaded)",
    )
    index.add_argument(
        "--format", choices=("v2", "v3"), default="v3",
        help="on-disk index layout: 'v3' (default) is the zero-copy "
        "binary container (index.nlx) that loads via mmap; 'v2' is the "
        "legacy JSON format (index.json)",
    )

    search = subparsers.add_parser("search", help="query an indexed dataset")
    search.add_argument("directory", type=Path)
    search.add_argument("query")
    search.add_argument("-k", type=int, default=5)
    search.add_argument("--beta", type=float, default=None)
    search.add_argument(
        "--ranking", choices=("auto", "pruned", "exhaustive"), default=None,
        help="query-serving path (default: engine config, 'auto' = cost-based planner)",
    )
    search.add_argument(
        "--explain", action="store_true",
        help="print relationship paths for the top result",
    )
    search.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query time budget in milliseconds; when it expires the "
        "query degrades to text-only ranking instead of failing",
    )
    search.add_argument(
        "--stats", action="store_true",
        help="after the results, print the query's stage timings, serving "
        "path, and the engine's metric counters",
    )
    search.add_argument(
        "--mmap", action=argparse.BooleanOptionalAction, default=True,
        help="memory-map a v3 index instead of hydrating it onto the "
        "heap (default: --mmap; non-v3 files always heap-load)",
    )

    evaluate = subparsers.add_parser(
        "evaluate", help="quick Lucene vs NewsLink HIT@k on the test split"
    )
    evaluate.add_argument("directory", type=Path)
    evaluate.add_argument("-k", type=int, default=5)
    evaluate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for indexing (0 = one per core, 1 = serial)",
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="stream simulated feeds through the durable ingestion pipeline",
    )
    ingest.add_argument("directory", type=Path)
    ingest.add_argument(
        "--state-dir", type=Path, default=None,
        help="pipeline state directory holding the WAL, snapshots and "
        "manifest (default: DIR/ingest); rerunning with the same state "
        "dir resumes after the last run, crashed or clean",
    )
    ingest.add_argument(
        "--dataset", choices=("cnn", "kaggle"), default="cnn",
        help="canned world configuration the feeds simulate from (must "
        "match what `repro generate` used)",
    )
    ingest.add_argument("--scale", type=float, default=0.5)
    ingest.add_argument(
        "--sources", default="rss,social,filings",
        help="comma-separated feed profiles to stream (rss, social, filings)",
    )
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--rounds", type=int, default=10,
        help="dispatch rounds to run before checkpointing and exiting",
    )
    ingest.add_argument("--batch-size", type=int, default=8)
    ingest.add_argument(
        "--checkpoint-every", type=int, default=256,
        help="applied events between automatic compactions (0 = only "
        "the final checkpoint on exit)",
    )
    ingest.add_argument(
        "--stats", action="store_true",
        help="print the full ingest stats payload as JSON on exit",
    )

    serve = subparsers.add_parser(
        "serve", help="serve the indexed dataset over HTTP (JSON API)"
    )
    serve.add_argument("directory", type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-query time budget in milliseconds for every "
        "served query; expired queries degrade to text-only ranking",
    )
    serve.add_argument(
        "--no-metrics", action="store_true",
        help="disable the metrics registry and query tracing (the "
        "/metrics and /stats endpoints then serve empty views)",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="serve through N document-partitioned shards behind a "
        "scatter-gather coordinator (0 = single-engine serving); "
        "merged results are bit-identical to the single engine",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=1,
        help="forked worker processes per shard (sharded mode only)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=0,
        help="concurrent queries in the serving stage "
        "(0 = one per shard worker; sharded mode only)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="queries allowed to wait for a serving slot before "
        "arrivals are shed with 429 (sharded mode only)",
    )
    serve.add_argument(
        "--no-shedding", action="store_true",
        help="disable admission control entirely (unbounded queueing; "
        "sharded mode only — for load experiments, not production)",
    )
    serve.add_argument(
        "--inline-shards", action="store_true",
        help="run shards in-process instead of forked workers "
        "(for platforms without fork; sharded mode only)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="seconds an accepted connection may idle before its "
        "request line arrives; beyond it the server answers 408",
    )
    serve.add_argument(
        "--mmap", action=argparse.BooleanOptionalAction, default=True,
        help="memory-map a v3 index instead of hydrating it onto the "
        "heap; forked shard workers then share the mapped pages "
        "copy-on-write (default: --mmap)",
    )
    serve.add_argument(
        "--ingest", action="store_true",
        help="stream simulated feeds into the live engine while serving "
        "(single-engine mode only); /stats gains an ingest section with "
        "freshness percentiles and per-source breaker health",
    )
    serve.add_argument(
        "--ingest-dir", type=Path, default=None,
        help="ingest state directory (default: DIR/ingest)",
    )
    serve.add_argument(
        "--ingest-interval", type=float, default=0.5,
        help="seconds between dispatch rounds of the background ingest loop",
    )
    serve.add_argument(
        "--ingest-sources", default="rss,social,filings",
        help="comma-separated feed profiles to stream while serving",
    )
    serve.add_argument("--ingest-seed", type=int, default=0)
    serve.add_argument(
        "--dataset", choices=("cnn", "kaggle"), default="cnn",
        help="world configuration the simulated feeds draw from "
        "(--ingest only; must match `repro generate`)",
    )
    serve.add_argument(
        "--scale", type=float, default=0.5,
        help="world scale for the simulated feeds (--ingest only)",
    )
    serve.add_argument(
        "--profiles", action="store_true",
        help="enable per-user click-history profiles (/click and "
        "/search?user=); single-engine serving only — the coordinator "
        "frontend is document-free",
    )
    serve.add_argument(
        "--gamma", type=float, default=None,
        help="context-channel weight applied to personalized queries "
        "that do not pass an explicit gamma= (default: 0.35)",
    )
    serve.add_argument(
        "--session-capacity", type=int, default=None,
        help="bound on resident sessions (least-recently-used eviction)",
    )
    serve.add_argument(
        "--profile-capacity", type=int, default=None,
        help="bound on resident profiles (least-recently-used eviction)",
    )
    return parser


def _load_engine(
    directory: Path,
    beta: float | None = None,
    deadline_ms: float | None = None,
    metrics_enabled: bool = True,
    mmap: bool = True,
) -> NewsLinkEngine:
    graph = load_graph_json(directory / _KG_FILE)
    fusion = FusionConfig(beta=beta) if beta is not None else FusionConfig()
    config = EngineConfig(
        fusion=fusion,
        deadline_ms=deadline_ms,
        metrics_enabled=metrics_enabled,
        mmap=mmap,
    )
    engine = NewsLinkEngine(graph, config)
    for name in _INDEX_CANDIDATES:
        index_path = directory / name
        if index_path.exists():
            break
    else:
        raise SystemExit(
            f"no index under {directory}; "
            f"run `repro index {directory}` first"
        )
    engine.load_index(index_path)
    return engine


def _cmd_generate(args: argparse.Namespace) -> int:
    factory = cnn_like_config if args.dataset == "cnn" else kaggle_like_config
    world_config, news_config = factory(scale=args.scale)
    dataset = make_dataset(args.dataset, world_config, news_config)
    args.directory.mkdir(parents=True, exist_ok=True)
    save_graph_json(dataset.world.graph, args.directory / _KG_FILE)
    save_corpus_jsonl(dataset.corpus, args.directory / _CORPUS_FILE)
    print(
        f"wrote {dataset.world.graph.num_nodes}-node KG and "
        f"{len(dataset.corpus)}-document corpus to {args.directory}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.directory / _KG_FILE)
    corpus = load_corpus_jsonl(args.directory / _CORPUS_FILE)
    config = EngineConfig(
        fusion=FusionConfig(beta=args.beta),
        use_tree_embedder=args.tree,
        workers=args.workers,
    )
    engine = NewsLinkEngine(graph, config)
    skipped = engine.index_corpus(corpus)
    index_file = _INDEX_FILE_V3 if args.format == "v3" else _INDEX_FILE_V2
    if args.gzip:
        index_file += ".gz"
    engine.save_index(args.directory / index_file, format=args.format)
    print(
        f"indexed {engine.num_indexed} documents "
        f"({len(skipped)} had no subgraph embedding); "
        f"index saved to {args.directory / index_file}"
    )
    report = engine.last_index_report
    if report is not None:
        print(
            f"parallel pipeline: {report.workers} workers, "
            f"{report.unique_groups}/{report.total_groups} unique entity "
            f"groups embedded ({report.dedup_rate:.0%} deduplicated)"
        )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    engine = _load_engine(args.directory, args.beta, mmap=args.mmap)
    results = engine.search(
        args.query,
        k=args.k,
        beta=args.beta,
        ranking=args.ranking,
        deadline_ms=args.deadline_ms,
    )
    if not results:
        print("no results")
        return 1
    if results[0].degraded:
        print(f"[degraded: {results[0].degraded_reason}]")
    corpus = load_corpus_jsonl(args.directory / _CORPUS_FILE)
    for rank, result in enumerate(results, start=1):
        title = corpus.get(result.doc_id).title if result.doc_id in corpus else ""
        print(f"{rank}. {result.doc_id}  score={result.score:.3f}  {title}")
        snippet = engine.snippet(args.query, result.doc_id)
        if snippet.text:
            print(f"   {snippet.text}")
    if args.explain:
        print("\nwhy the top result is related:")
        explanation = engine.explanation(args.query, results[0].doc_id)
        for line in explanation.lines():
            print("   ", line)
    if args.stats:
        _print_search_stats(engine)
    return 0


def _print_search_stats(engine: NewsLinkEngine) -> None:
    """The ``search --stats`` footer: trace + counters for this query."""
    records = engine.observability.tracer.records()
    if records:
        trace = records[-1]
        print("\nquery trace:")
        print(f"   total      {trace['duration_ms']:.2f} ms")
        for stage, ms in trace.get("stages_ms", {}).items():
            print(f"   {stage:<10} {ms:.2f} ms")
        attributes = trace.get("attributes", {})
        for key in ("path", "query_cache", "degraded_reason"):
            if key in attributes:
                print(f"   {key:<10} {attributes[key]}")
    print("engine counters:")
    for name, value in sorted(engine.query_stats.as_dict().items()):
        print(f"   query.{name:<22} {value}")
    for name, value in sorted(engine.search_stats.as_dict().items()):
        print(f"   gstar.{name:<22} {value}")
    cache = engine.cache_stats
    if cache is not None:
        for name, value in sorted(cache.as_dict().items()):
            formatted = f"{value:.3f}" if name == "hit_rate" else value
            print(f"   segment_cache.{name:<14} {formatted}")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.eval.queries import build_query_cases

    graph = load_graph_json(args.directory / _KG_FILE)
    corpus = load_corpus_jsonl(args.directory / _CORPUS_FILE)
    engine = NewsLinkEngine(graph, EngineConfig(workers=args.workers))
    engine.index_corpus(corpus)
    # last 10% of the corpus acts as the query set
    documents = list(corpus)
    test_docs = documents[-max(1, len(documents) // 10):]
    from repro.data.document import Corpus

    cases = build_query_cases(Corpus(test_docs), engine.pipeline, mode="density")
    hits = {"Lucene (beta=0)": 0, "NewsLink (beta=0.2)": 0}
    for case in cases:
        for name, beta in (("Lucene (beta=0)", 0.0), ("NewsLink (beta=0.2)", 0.2)):
            ranked = engine.search(case.query_text, k=args.k, beta=beta)
            if any(r.doc_id == case.query_doc_id for r in ranked):
                hits[name] += 1
    print(f"HIT@{args.k} over {len(cases)} density queries:")
    for name, count in hits.items():
        print(f"  {name:<20} {count}/{len(cases)} = {count / len(cases):.3f}")
    from repro.eval.diagnostics import corpus_diagnostics

    print("\ncorpus diagnostics:")
    for line in corpus_diagnostics(corpus, engine).lines():
        print(f"  {line}")
    return 0


def _feed_world(dataset: str, scale: float):
    """The same world `repro generate` built (feeds simulate from it)."""
    from repro.kg.synthetic import generate_world
    from repro.utils.rng import spawn_rngs

    factory = cnn_like_config if dataset == "cnn" else kaggle_like_config
    world_config, _ = factory(scale=scale)
    world_rng, _, _ = spawn_rngs(world_config.seed, 3)
    return generate_world(world_config, rng=world_rng)


def _build_feeds(sources: str, world, seed: int):
    from repro.ingest import SyntheticFeed

    profiles = [name.strip() for name in sources.split(",") if name.strip()]
    if not profiles:
        raise SystemExit("no feed sources given")
    return [
        SyntheticFeed(profile, world, profile=profile, seed=seed + offset)
        for offset, profile in enumerate(profiles)
    ]


def _open_pipeline(
    directory: Path,
    state_dir: Path | None,
    dataset: str,
    scale: float,
    sources: str,
    seed: int,
    config,
    engine_config=None,
):
    from repro.ingest import IngestPipeline

    world = _feed_world(dataset, scale)
    kg_path = directory / _KG_FILE
    base_graph = load_graph_json(kg_path) if kg_path.exists() else world.graph
    bootstrap = None
    for name in _INDEX_CANDIDATES:
        candidate = directory / name
        if candidate.exists():
            bootstrap = candidate
            break
    return IngestPipeline.open(
        state_dir or (directory / "ingest"),
        base_graph,
        _build_feeds(sources, world, seed),
        config=config,
        engine_config=engine_config,
        bootstrap_index=bootstrap,
    )


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.config import IngestConfig

    pipeline = _open_pipeline(
        args.directory,
        args.state_dir,
        args.dataset,
        args.scale,
        args.sources,
        args.seed,
        IngestConfig(
            batch_size=args.batch_size,
            checkpoint_every=args.checkpoint_every,
        ),
    )
    if pipeline.replayed_records:
        print(
            f"recovered: replayed {pipeline.replayed_records} WAL records "
            f"in {pipeline.last_recovery_seconds:.2f}s "
            f"(generation {pipeline.generation})"
        )
    admitted = pipeline.run(args.rounds)
    pipeline.close()
    stats = pipeline.stats_payload()
    freshness = stats["freshness"]
    print(
        f"ingested {admitted} events over {args.rounds} rounds: "
        f"{pipeline.engine.num_indexed} documents searchable, "
        f"generation {stats['generation']}, dlq {stats['dlq']}, "
        f"freshness p50 {freshness['p50'] * 1000:.1f}ms "
        f"p99 {freshness['p99'] * 1000:.1f}ms"
    )
    for name, source in stats["sources"].items():
        print(
            f"  {name:<10} seq={source['seq_applied']:<6} "
            f"breaker={source['breaker']:<9} "
            f"applied={source['applied']}"
        )
    if args.stats:
        print(json_module.dumps(stats, indent=1, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.personalize import ProfileStore, SessionStore
    from repro.server import PersonalizationState, serve

    if args.ingest and args.shards > 0:
        raise SystemExit(
            "--ingest requires single-engine serving (drop --shards); "
            "shard workers hold forked index copies that live mutation "
            "cannot reach"
        )
    if args.profiles and args.shards > 0:
        raise SystemExit(
            "--profiles requires single-engine serving (drop --shards); "
            "the coordinator frontend is document-free, so clicked "
            "documents cannot be folded into user profiles"
        )
    pipeline = None
    if args.ingest:
        from repro.config import IngestConfig

        pipeline = _open_pipeline(
            args.directory,
            args.ingest_dir,
            args.dataset,
            args.scale,
            args.ingest_sources,
            args.ingest_seed,
            IngestConfig(),
            engine_config=EngineConfig(
                deadline_ms=args.deadline_ms,
                metrics_enabled=not args.no_metrics,
                mmap=args.mmap,
            ),
        )
        engine = pipeline.engine
        print(
            f"ingest attached: {sorted(pipeline.source_states)} -> "
            f"{args.ingest_dir or (args.directory / 'ingest')} "
            f"(generation {pipeline.generation}, "
            f"{pipeline.engine.num_indexed} documents at start)",
            flush=True,
        )
    else:
        engine = _load_engine(
            args.directory,
            deadline_ms=args.deadline_ms,
            metrics_enabled=not args.no_metrics,
            mmap=args.mmap,
        )
    target = engine
    if args.shards > 0:
        from repro.config import ServingConfig
        from repro.serving import Coordinator

        serving_config = ServingConfig(
            num_shards=args.shards,
            workers_per_shard=args.shard_workers,
            max_inflight=args.max_inflight,
            max_queue=None if args.no_shedding else args.max_queue,
            transport="inline" if args.inline_shards else "process",
        )
        target = Coordinator.build(engine, serving_config)
        print(
            f"sharded serving: {args.shards} shards x "
            f"{args.shard_workers} workers "
            f"({serving_config.transport} transport), "
            f"max_inflight={serving_config.effective_max_inflight}, "
            f"max_queue={serving_config.max_queue}",
            flush=True,
        )
    session_kwargs = (
        {"capacity": args.session_capacity}
        if args.session_capacity is not None
        else {}
    )
    profile_kwargs = (
        {"capacity": args.profile_capacity}
        if args.profile_capacity is not None
        else {}
    )
    personalization_kwargs = (
        {"default_gamma": args.gamma} if args.gamma is not None else {}
    )
    personalization = PersonalizationState(
        sessions=SessionStore(**session_kwargs),
        profiles=ProfileStore(**profile_kwargs) if args.profiles else None,
        **personalization_kwargs,
    )
    if args.profiles:
        print(
            f"profiles enabled: capacity "
            f"{personalization.profiles.capacity}, default gamma "
            f"{personalization.default_gamma}",
            flush=True,
        )
    if pipeline is not None:
        pipeline.start(args.ingest_interval)
    serve(
        target,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        ingest=pipeline,
        personalization=personalization,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "index": _cmd_index,
        "search": _cmd_search,
        "evaluate": _cmd_evaluate,
        "ingest": _cmd_ingest,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
