"""Reliability layer: deterministic fault injection and deadline serving.

* :mod:`repro.reliability.faults` — a registry of named failure points
  that tests arm with deterministic triggers; a no-op when disarmed.
* :class:`repro.utils.deadline.Deadline` (re-exported here) — the
  wall-clock budget plumbed through query serving.

See ``docs/robustness.md`` for the failure-mode catalog and guarantees.
"""

from repro.reliability import faults
from repro.utils.deadline import CHECK_INTERVAL, Deadline

__all__ = ["faults", "Deadline", "CHECK_INTERVAL"]
