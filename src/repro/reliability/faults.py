"""Deterministic fault injection: named failure points, armed by tests.

Production code marks its failure-prone seams with a *fault point*::

    from repro.reliability import faults
    ...
    faults.fire("persist.write")          # cold path: call directly
    ...
    if faults.ACTIVE:                     # hot loop: guard first
        faults.fire("search.pop")

With nothing armed, :func:`fire` returns after a single module-flag check
(and hot loops skip even the call via :data:`ACTIVE`), so the serving path
pays nothing.  Tests arm a point with a deterministic trigger — fail on
the Nth hit, raise a given exception, run a callback, or inject a sleep —
and every failure mode in the stack becomes exercisable without
monkeypatching internals::

    with faults.injected("worker.embed_chunk", exception=RuntimeError("boom")):
        engine.index_corpus(corpus, workers=2)   # workers now fail

Armed state is plain module state, so forked worker processes inherit it
(hit counters then advance per process).  The registry is intentionally
process-global: arm/disarm from one test at a time (`injected` and
``reset`` keep that hygienic).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import FaultInjectedError

#: Catalog of failure points wired into the stack.  ``arm`` validates
#: against it so tests cannot silently arm a typo'd (never-fired) point.
CATALOG: frozenset[str] = frozenset(
    {
        "engine.embed_query",  # engine NE stage of query processing
        "engine.embed_document",  # engine NE stage of document indexing
        "search.pop",  # every G* frontier pop, both backends
        "worker.nlp_chunk",  # worker-side NLP chunk execution
        "worker.embed_chunk",  # worker-side G* chunk execution
        "persist.write",  # save_index, before the payload is written
        "persist.load",  # load_index, before the file is read
        "serving.worker_request",  # shard worker, before serving a request
        "ingest.source_fetch",  # feed adapter fetch, before events return
        "ingest.wal_append",  # WAL append, between frame header and payload
        "ingest.wal_sync",  # WAL fsync batching, before the fsync call
        "ingest.apply",  # delta apply into the live engine
        "ingest.checkpoint",  # compaction, between snapshot and manifest
        "session.profile_load",  # profile-store lookup on the search path
    }
)

#: Fast-path flag: True iff at least one point is armed.  Hot loops read
#: this before calling :func:`fire` so the disarmed cost is one global load.
ACTIVE = False


@dataclass
class FaultState:
    """One armed failure point and its deterministic trigger.

    The fault triggers on hits ``nth, nth+1, ...`` and — when ``times`` is
    set — stops after firing ``times`` times.  A trigger first sleeps
    ``delay`` seconds, then runs ``callback``, then raises ``exception``
    (a class or instance); a delay-only fault injects latency without
    raising, and a fault with neither raises :class:`FaultInjectedError`.
    """

    point: str
    exception: type[BaseException] | BaseException | None = None
    delay: float = 0.0
    callback: Callable[[], None] | None = None
    nth: int = 1
    times: int | None = None
    hits: int = 0
    fired: int = 0

    def _should_fire(self) -> bool:
        if self.hits < self.nth:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return True

    def trigger(self) -> None:
        """Record a hit and execute the trigger when it applies."""
        self.hits += 1
        if not self._should_fire():
            return
        self.fired += 1
        if self.delay > 0.0:
            time.sleep(self.delay)
        if self.callback is not None:
            self.callback()
        if self.exception is not None:
            if isinstance(self.exception, BaseException):
                raise self.exception
            raise self.exception(f"injected fault at {self.point!r}")
        if self.delay <= 0.0 and self.callback is None:
            raise FaultInjectedError(self.point)


_registry: dict[str, FaultState] = {}


def _refresh_active() -> None:
    global ACTIVE
    ACTIVE = bool(_registry)


def arm(
    point: str,
    *,
    exception: type[BaseException] | BaseException | None = None,
    delay: float = 0.0,
    callback: Callable[[], None] | None = None,
    nth: int = 1,
    times: int | None = None,
) -> FaultState:
    """Arm ``point`` with a deterministic trigger; returns its state.

    ``nth`` is the 1-based hit on which the fault starts firing; ``times``
    caps how many hits fire (None = every hit from ``nth`` on).
    """
    if point not in CATALOG:
        raise ValueError(
            f"unknown fault point {point!r}; catalog: {sorted(CATALOG)}"
        )
    if nth < 1:
        raise ValueError("nth must be >= 1")
    if times is not None and times < 1:
        raise ValueError("times must be >= 1 when set")
    state = FaultState(
        point=point,
        exception=exception,
        delay=delay,
        callback=callback,
        nth=nth,
        times=times,
    )
    _registry[point] = state
    _refresh_active()
    return state


def disarm(point: str) -> None:
    """Remove ``point``'s trigger (idempotent)."""
    _registry.pop(point, None)
    _refresh_active()


def reset() -> None:
    """Disarm every point (test teardown)."""
    _registry.clear()
    _refresh_active()


def armed(point: str) -> bool:
    """True when ``point`` currently has a trigger."""
    return point in _registry


def hits(point: str) -> int:
    """How often ``point`` was hit since arming (0 when disarmed)."""
    state = _registry.get(point)
    return 0 if state is None else state.hits


def fire(point: str) -> None:
    """Hit ``point``: a no-op unless a test armed a trigger for it.

    Hot loops should guard with ``if faults.ACTIVE`` to skip even this
    call; cold paths call it directly.
    """
    if not ACTIVE:
        return
    state = _registry.get(point)
    if state is None:
        return
    state.trigger()


@contextmanager
def injected(
    point: str,
    *,
    exception: type[BaseException] | BaseException | None = None,
    delay: float = 0.0,
    callback: Callable[[], None] | None = None,
    nth: int = 1,
    times: int | None = None,
) -> Iterator[FaultState]:
    """Arm ``point`` for the duration of a ``with`` block, then disarm."""
    state = arm(
        point,
        exception=exception,
        delay=delay,
        callback=callback,
        nth=nth,
        times=times,
    )
    try:
        yield state
    finally:
        disarm(point)
