"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for structural problems in a knowledge graph."""


class NodeNotFoundError(GraphError):
    """Raised when a node id is not present in the graph."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node not found: {node_id!r}")
        self.node_id = node_id


class EdgeNotFoundError(GraphError):
    """Raised when an edge lookup fails."""


class LabelNotFoundError(GraphError):
    """Raised when an entity label matches no node in the label index."""

    def __init__(self, label: str) -> None:
        super().__init__(f"label matches no KG node: {label!r}")
        self.label = label


class EmbeddingError(ReproError):
    """Raised when a subgraph embedding cannot be produced."""


class NoCommonAncestorError(EmbeddingError):
    """Raised when no common ancestor graph exists for a label group."""

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(f"no common ancestor graph exists for labels {labels!r}")
        self.labels = labels


class SearchTimeoutError(EmbeddingError):
    """Raised when the G* search exhausts its pop/time budget."""

    def __init__(self, message: str, pops: int) -> None:
        super().__init__(message)
        self.pops = pops


class DeadlineExpiredError(EmbeddingError):
    """Raised inside embedding when a per-query wall-clock deadline expires.

    The engine's ``search`` never lets this escape: it abandons the query
    embedding and degrades to text-only (BOW) ranking instead.  Direct
    embedding calls (``find_lcag``, ``embed_document``) do raise it so
    callers that own the deadline can react.
    """

    def __init__(self, message: str, pops: int = 0) -> None:
        super().__init__(message)
        self.pops = pops


class IndexError_(ReproError):
    """Raised for retrieval-index misuse (name avoids builtin shadowing)."""


class DocumentNotIndexedError(IndexError_):
    """Raised when a document id is queried but was never indexed."""

    def __init__(self, doc_id: str) -> None:
        super().__init__(f"document not indexed: {doc_id!r}")
        self.doc_id = doc_id


class ModelNotTrainedError(ReproError):
    """Raised when inference is requested from an untrained model."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""


class DataError(ReproError):
    """Raised for malformed corpus or KG input data."""


class IndexCorruptError(DataError):
    """Raised when a persisted index file fails validation on load.

    Covers truncation, invalid JSON, checksum mismatches, unsupported
    versions, and schema-mismatched records.  ``load_index`` guarantees the
    live engine state is untouched when this is raised.
    """

    def __init__(self, path: object, detail: str) -> None:
        super().__init__(f"{path}: corrupt index file: {detail}")
        self.path = str(path)
        self.detail = detail


class IngestError(ReproError):
    """Raised for failures in the streaming-ingestion pipeline."""


class WalCorruptError(IngestError):
    """Raised when a WAL segment fails validation beyond its torn tail.

    Recovery silently truncates a torn *tail* (the expected signature of a
    crash mid-append); anything else — bad magic, a corrupt frame followed
    by valid data, CRC mismatch in the body — is real corruption and
    raises this error instead of guessing.
    """

    def __init__(self, path: object, detail: str) -> None:
        super().__init__(f"{path}: corrupt WAL segment: {detail}")
        self.path = str(path)
        self.detail = detail


class ServingError(ReproError):
    """Raised for failures in the sharded serving layer."""


class OverloadShedError(ServingError):
    """Raised when admission control rejects a query instead of queueing.

    ``reason`` is ``"queue_full"`` (the bounded wait queue is at
    capacity) or ``"deadline"`` (the query's deadline would expire — or
    already has — before a serving slot could free up).  The HTTP layer
    maps this to 429; shedding is the overload policy working, not a
    server fault (see ``docs/serving.md``).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        message = f"query shed by admission control ({reason})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.reason = reason


class ShardFailedError(ServingError):
    """Raised when a shard cannot serve a request and no fallback applies.

    Scatter-gather *search* never raises this — a failed shard yields a
    ``partial`` result instead.  Single-shard requests (snippet,
    document, explain) do raise it when the owning shard's workers are
    unavailable.
    """

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"shard {shard_id} failed: {detail}")
        self.shard_id = shard_id


class FaultInjectedError(ReproError):
    """Default exception raised by an armed fault point (tests only).

    Never raised in production: :mod:`repro.reliability.faults` is a no-op
    unless a test explicitly arms a failure point.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point
