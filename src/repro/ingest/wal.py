"""Crash-safe write-ahead log for streaming ingestion.

Every delta (document add/remove, entity card, checkpoint marker) is
appended to a segment file *before* it is applied to the live engine, so
a crash at any instant loses at most un-synced tail records — and those
are regenerated deterministically by the feeds (see
``docs/ingestion.md``).  The format follows the persistence discipline
of the v3 index container (:mod:`repro.search.storage`): explicit magic,
little-endian framing, CRC over every payload, fail-closed validation.

Segment layout::

    8 bytes   magic  b"NLWAL1\\x00\\n"
    repeated  frames: <II> (payload_length, crc32(payload)) + payload

Payloads are canonical JSON (sorted keys, compact separators) of a
:class:`WalRecord`.  Durability is batched: ``fsync`` runs every
``sync_every`` appends and on :meth:`Wal.sync`; segments are opened
unbuffered so a crash mid-append leaves a *genuinely* torn frame on
disk, which recovery detects by CRC and truncates.  A torn tail is the
expected crash signature and is silently healed; corruption anywhere
else raises :class:`~repro.errors.WalCorruptError` — the log refuses to
guess.

Record types:

``add``
    ``payload`` holds ``doc_id``, ``text``, ``title``, ``topic_id`` and
    ``fetched_at`` (epoch seconds stamped at fetch — the start of the
    freshness clock).
``remove``
    ``payload`` holds ``doc_id`` and ``fetched_at``.
``entity``
    An *entity card*: one canonical node (``id``, ``label``, ``type``,
    ``aliases``, ``description``) plus its ``edges`` — atomic, so no WAL
    record ever references entity state outside itself or the base KG.
``checkpoint``
    ``payload`` holds ``generation`` and the per-source ``applied``
    sequence map at the moment the snapshot covering them was committed.
    Replay uses it (together with the manifest) to skip records already
    folded into the snapshot.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import IngestError, WalCorruptError
from repro.reliability import faults

MAGIC = b"NLWAL1\x00\n"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: Record types accepted by :meth:`Wal.append`.
RECORD_TYPES = ("add", "remove", "entity", "checkpoint")

_SEGMENT_GLOB = "wal-*.seg"


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


@dataclass(frozen=True)
class WalRecord:
    """One framed WAL entry.

    ``source``/``seq`` key idempotent apply: sequence numbers are
    monotonic per source, so replay can skip anything at or below the
    recovered applied watermark.  Checkpoint records use the reserved
    source ``"_wal"`` and seq 0.
    """

    type: str
    source: str
    seq: int
    payload: dict

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "type": self.type,
                "source": self.source,
                "seq": self.seq,
                "payload": self.payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "WalRecord":
        data = json.loads(raw.decode("utf-8"))
        return cls(
            type=data["type"],
            source=data["source"],
            seq=int(data["seq"]),
            payload=data["payload"],
        )

    @classmethod
    def checkpoint(cls, generation: int, applied: dict[str, int]) -> "WalRecord":
        return cls(
            type="checkpoint",
            source="_wal",
            seq=0,
            payload={"generation": generation, "applied": dict(applied)},
        )


@dataclass
class WalScan:
    """What :meth:`Wal.open` learned from the existing segments."""

    #: Highest seq seen per source among intact (well-framed) records.
    appended: dict[str, int]
    #: Last checkpoint record encountered, if any.
    checkpoint: WalRecord | None
    #: Bytes truncated from a torn tail (0 on a clean log).
    truncated_bytes: int
    #: Intact records scanned across all segments.
    records: int


class Wal:
    """Segmented, CRC-framed, fsync-batched write-ahead log.

    Use :meth:`open` — it scans existing segments, heals a torn tail and
    returns both the log and what it found, so the caller can replay and
    fast-forward its feeds.
    """

    def __init__(
        self,
        directory: Path,
        *,
        sync_every: int = 16,
        segment_bytes: int = 1 << 20,
    ) -> None:
        if sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        if segment_bytes < len(MAGIC) + _FRAME.size:
            raise ValueError("segment_bytes too small to hold a record")
        self.directory = Path(directory)
        self.sync_every = sync_every
        self.segment_bytes = segment_bytes
        self._file = None
        self._segment_index = 0
        self._segment_size = 0
        self._unsynced = 0
        self.appends_total = 0
        self.syncs_total = 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: Path,
        *,
        sync_every: int = 16,
        segment_bytes: int = 1 << 20,
    ) -> tuple["Wal", WalScan]:
        """Open (creating if needed) the log in ``directory``.

        Scans every existing segment in order, CRC-checking each frame.
        A torn tail on the *last* segment is truncated in place (the
        crash-mid-append signature); any other damage raises
        :class:`WalCorruptError`.
        """
        wal = cls(directory, sync_every=sync_every, segment_bytes=segment_bytes)
        wal.directory.mkdir(parents=True, exist_ok=True)
        segments = wal._segments()
        scan = WalScan(appended={}, checkpoint=None, truncated_bytes=0, records=0)
        for position, path in enumerate(segments):
            last = position == len(segments) - 1
            for record in wal._scan_segment(path, heal_tail=last, scan=scan):
                scan.records += 1
                if record.type == "checkpoint":
                    scan.checkpoint = record
                else:
                    previous = scan.appended.get(record.source, -1)
                    if record.seq > previous:
                        scan.appended[record.source] = record.seq
        if segments:
            wal._segment_index = int(segments[-1].stem.split("-")[1])
            wal._open_segment(append=True)
        else:
            wal._segment_index = 1
            wal._open_segment(append=False)
        return wal, scan

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    # -- append path -------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Frame and write ``record``; fsync when the batch is due.

        The frame header and payload are written separately with the
        ``ingest.wal_append`` fault point between them, so an injected
        crash leaves a header with no (or partial) payload — a real torn
        tail for the recovery path to heal.
        """
        if self._file is None:
            raise IngestError("append on a closed WAL")
        if record.type not in RECORD_TYPES:
            raise ValueError(f"unknown WAL record type {record.type!r}")
        payload = record.to_bytes()
        if self._segment_size + _FRAME.size + len(payload) > self.segment_bytes:
            self._rotate()
        self._file.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        faults.fire("ingest.wal_append")
        self._file.write(payload)
        self._segment_size += _FRAME.size + len(payload)
        self.appends_total += 1
        self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.sync()

    def sync(self) -> None:
        """Force the current segment to stable storage."""
        if self._file is None or self._unsynced == 0:
            return
        faults.fire("ingest.wal_sync")
        os.fsync(self._file.fileno())
        self._unsynced = 0
        self.syncs_total += 1

    def reset(self, generation: int, applied: dict[str, int]) -> None:
        """Truncate history after a committed checkpoint.

        Deletes every segment and starts a fresh one whose first record
        is a checkpoint marker, so a log that is replayed immediately
        after still knows which generation its (empty) tail extends.
        """
        if self._file is not None:
            self._file.close()
            self._file = None
        for path in self._segments():
            path.unlink()
        self._segment_index += 1
        self._open_segment(append=False)
        self.append(WalRecord.checkpoint(generation, applied))
        self.sync()

    # -- read path ---------------------------------------------------------

    def replay(self) -> Iterator[WalRecord]:
        """Yield every intact record across all segments, in append order."""
        self.sync()
        for path in self._segments():
            yield from self._scan_segment(path, heal_tail=False, scan=None)

    # -- introspection -----------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._segments())

    @property
    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self._segments())

    # -- internals ---------------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(self.directory.glob(_SEGMENT_GLOB))

    def _open_segment(self, *, append: bool) -> None:
        path = self.directory / _segment_name(self._segment_index)
        if append and path.exists():
            self._file = open(path, "r+b", buffering=0)
            self._file.seek(0, os.SEEK_END)
            self._segment_size = self._file.tell()
        else:
            self._file = open(path, "wb", buffering=0)
            self._file.write(MAGIC)
            self._segment_size = len(MAGIC)
        self._unsynced = 0

    def _rotate(self) -> None:
        self.sync()
        self._file.close()
        self._segment_index += 1
        self._open_segment(append=False)

    def _scan_segment(
        self, path: Path, *, heal_tail: bool, scan: WalScan | None
    ) -> Iterator[WalRecord]:
        raw = path.read_bytes()
        if len(raw) < len(MAGIC) or raw[: len(MAGIC)] != MAGIC:
            if heal_tail and not raw:
                # A crash immediately after segment creation can leave an
                # empty file; rewrite the magic so appends can continue.
                path.write_bytes(MAGIC)
                return
            raise WalCorruptError(path, "bad or missing magic")
        offset = len(MAGIC)
        while offset < len(raw):
            good = offset
            if offset + _FRAME.size > len(raw):
                self._heal_or_raise(path, raw, good, heal_tail, scan, "truncated frame header")
                return
            length, crc = _FRAME.unpack_from(raw, offset)
            offset += _FRAME.size
            if offset + length > len(raw):
                self._heal_or_raise(path, raw, good, heal_tail, scan, "truncated payload")
                return
            payload = raw[offset : offset + length]
            if zlib.crc32(payload) != crc:
                self._heal_or_raise(path, raw, good, heal_tail, scan, "payload CRC mismatch")
                return
            offset += length
            try:
                record = WalRecord.from_bytes(payload)
            except (ValueError, KeyError) as exc:
                raise WalCorruptError(path, f"undecodable record: {exc}") from exc
            yield record

    @staticmethod
    def _heal_or_raise(
        path: Path,
        raw: bytes,
        good: int,
        heal_tail: bool,
        scan: WalScan | None,
        detail: str,
    ) -> None:
        if not heal_tail:
            raise WalCorruptError(path, detail)
        with open(path, "r+b") as handle:
            handle.truncate(good)
            handle.flush()
            os.fsync(handle.fileno())
        if scan is not None:
            scan.truncated_bytes += len(raw) - good
