"""Dead-letter queue: quarantine for poison events.

An event whose apply keeps failing after bounded retries is moved here —
never dropped silently, never allowed to wedge the pipeline.  The queue
is an append-only JSONL file (one entry per line: source, seq, type,
reason, original payload) so operators can inspect, fix and re-submit by
hand, plus an in-memory ``(source, seq)`` set so replay after a restart
does not re-attempt an event that was already quarantined.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

FILENAME = "dlq.jsonl"


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined event."""

    source: str
    seq: int
    type: str
    reason: str
    payload: dict


class DeadLetterQueue:
    """Append-only JSONL quarantine with a replay-visible membership set."""

    def __init__(self, directory: Path) -> None:
        self.path = Path(directory) / FILENAME
        self._members: set[tuple[str, int]] = set()
        self._entries = 0
        if self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                entry = json.loads(line)
                self._members.add((entry["source"], int(entry["seq"])))
                self._entries += 1

    def quarantine(
        self, source: str, seq: int, type_: str, reason: str, payload: dict
    ) -> None:
        """Record a poison event (idempotent per ``(source, seq)``)."""
        if (source, seq) in self._members:
            return
        entry = {
            "source": source,
            "seq": seq,
            "type": type_,
            "reason": reason,
            "payload": payload,
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._members.add((source, seq))
        self._entries += 1

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._members

    def __len__(self) -> int:
        return self._entries

    def entries(self) -> list[DeadLetter]:
        """Read back every quarantined event (operator tooling / tests)."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            entry = json.loads(line)
            out.append(
                DeadLetter(
                    source=entry["source"],
                    seq=int(entry["seq"]),
                    type=entry["type"],
                    reason=entry["reason"],
                    payload=entry["payload"],
                )
            )
        return out
