"""``repro.ingest`` — durable streaming ingestion for the live engine.

News corpora change continuously; this package grows the index and the
knowledge graph *while queries serve*, and survives being killed at any
instant.  The moving parts:

* :class:`SyntheticFeed` / :class:`WedgedFeed` — deterministic per-source
  event streams (rss / social / filings profiles).
* :class:`CircuitBreaker` — per-source fault isolation.
* :class:`Wal` — CRC-framed, fsync-batched, segment-rotated write-ahead
  log with checkpoint records.
* :class:`EntityResolver` — alias/near-duplicate gate in front of the KG.
* :class:`DeadLetterQueue` — quarantine for poison events.
* :class:`IngestPipeline` — the dispatch loop, idempotent apply, crash
  recovery and compaction protocol tying it all together.

See ``docs/ingestion.md`` for the WAL format and recovery semantics.
"""

from repro.ingest.breaker import CircuitBreaker
from repro.ingest.dlq import DeadLetterQueue
from repro.ingest.feeds import FeedEvent, SyntheticFeed, WedgedFeed
from repro.ingest.pipeline import IngestPipeline, SourceState
from repro.ingest.resolve import EntityResolver, ResolvedCard
from repro.ingest.wal import Wal, WalRecord, WalScan

__all__ = [
    "CircuitBreaker",
    "DeadLetterQueue",
    "EntityResolver",
    "FeedEvent",
    "IngestPipeline",
    "ResolvedCard",
    "SourceState",
    "SyntheticFeed",
    "Wal",
    "WalRecord",
    "WalScan",
    "WedgedFeed",
]
