"""Entity-resolution gate: alias/near-duplicate disambiguation at admission.

Feeds emit entity cards under candidate ids; letting every card straight
into the KG would fill it with duplicate nodes for entities the graph
already knows under another surface form ("Vallini" vs "Jorro Vallini",
"The Harlow Group" vs "Harlow Group").  The gate runs *before* the WAL
append, so the log stores only canonical deltas — replay after a crash
never re-resolves, which removes resolver state from the recovery
equation entirely (see ``docs/ingestion.md``).

Decisions, tried in order:

``exact``
    The card's node id already exists — the card is a refresh of a
    known node; edges are kept, the node body is not rewritten.
``alias``
    The card's label (or one of its aliases) exact-matches an existing
    node's surface form after normalization; the card collapses onto
    that node.
``near_duplicate``
    Same, after stripping a leading determiner ("The ", "A ") and
    trailing punctuation — the cheap mangling real feeds exhibit.
``new``
    Nothing matched; the card enters the KG as a new node.

Ambiguity (a surface form matching several nodes) resolves to the
lexicographically smallest node id — an arbitrary but *deterministic*
tiebreak, which matters more than being clever here: admission runs
exactly once per event, and whatever it decides is what the WAL
permanently records.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.kg.graph import KnowledgeGraph
from repro.kg.label_index import LabelIndex, normalize_label

_DETERMINER = re.compile(r"^(?:the|a|an)\s+", re.IGNORECASE)
_TRAILING_PUNCT = re.compile(r"[\s.,;:!?]+$")

#: Decision labels, in the order they are attempted.
DECISIONS = ("exact", "alias", "near_duplicate", "new")


@dataclass
class ResolvedCard:
    """The gate's verdict on one entity card.

    ``node`` and ``edges`` are the canonical payload the WAL stores:
    when the card collapsed onto an existing node, ``node["id"]`` is the
    canonical id and edge endpoints are rewritten accordingly.
    ``dropped_edges`` counts edges discarded because an endpoint exists
    in neither the card nor the graph (they could never be applied).
    """

    decision: str
    node: dict
    edges: list[dict]
    canonical_id: str
    dropped_edges: int = 0


@dataclass
class EntityResolver:
    """Stateless-per-event resolution against a live graph + label index."""

    graph: KnowledgeGraph
    labels: LabelIndex
    #: Per-decision counters for observability.
    decisions: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in DECISIONS}
    )
    dropped_edges_total: int = 0

    def resolve(self, card: dict) -> ResolvedCard:
        """Canonicalize one entity-card payload (``{"node": .., "edges": ..}``)."""
        node = dict(card["node"])
        candidate_id = node["id"]
        decision, canonical_id = self._decide(node)
        self.decisions[decision] += 1
        if canonical_id != candidate_id:
            node["id"] = canonical_id
        edges, dropped = self._rewrite_edges(
            card.get("edges", []), candidate_id, canonical_id
        )
        self.dropped_edges_total += dropped
        return ResolvedCard(
            decision=decision,
            node=node,
            edges=edges,
            canonical_id=canonical_id,
            dropped_edges=dropped,
        )

    # -- internals ---------------------------------------------------------

    def _decide(self, node: dict) -> tuple[str, str]:
        candidate_id = node["id"]
        if self.graph.has_node(candidate_id):
            return "exact", candidate_id
        surface_forms = [node.get("label", ""), *node.get("aliases", [])]
        for form in surface_forms:
            matches = self.labels.try_lookup(form)
            if matches:
                return "alias", min(matches)
        for form in surface_forms:
            stripped = self._strip(form)
            if stripped and normalize_label(stripped) != normalize_label(form):
                matches = self.labels.try_lookup(stripped)
                if matches:
                    return "near_duplicate", min(matches)
        return "new", candidate_id

    @staticmethod
    def _strip(form: str) -> str:
        return _TRAILING_PUNCT.sub("", _DETERMINER.sub("", form)).strip()

    def _rewrite_edges(
        self, edges: list[dict], candidate_id: str, canonical_id: str
    ) -> tuple[list[dict], int]:
        kept: list[dict] = []
        dropped = 0
        for edge in edges:
            rewritten = dict(edge)
            for endpoint in ("source", "target"):
                if rewritten.get(endpoint) == candidate_id:
                    rewritten[endpoint] = canonical_id
            resolvable = all(
                rewritten.get(endpoint) == canonical_id
                or self.graph.has_node(rewritten.get(endpoint, ""))
                for endpoint in ("source", "target")
            )
            if not resolvable:
                dropped += 1
                continue
            if rewritten["source"] == rewritten["target"]:
                # Collapsing a duplicate can fold an edge onto itself.
                dropped += 1
                continue
            kept.append(rewritten)
        return kept, dropped
