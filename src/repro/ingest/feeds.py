"""Deterministic per-source feed adapters for the ingest pipeline.

Real deployments tail RSS feeds, social firehoses and regulatory-filing
streams; the reproduction simulates those shapes deterministically from
the synthetic-news seeds so every ingest test and benchmark is exactly
replayable.  Each feed owns an independent seeded rng and emits a
totally ordered stream of :class:`FeedEvent`\\ s with monotonic sequence
numbers — the property the WAL's idempotent apply and the crash-recovery
``fast_forward`` protocol are keyed on: a feed restarted and
fast-forwarded to seq *n* regenerates events ``n+1, n+2, ...``
bit-identically to a process that never crashed.

Three profiles mimic the workload shapes:

========  ==========  ========================================
profile   cadence     deltas
========  ==========  ========================================
rss       medium      mostly adds, few retractions, some entities
social    bursty      short docs, frequent retractions (deletes)
filings   slow, long  long docs, entity-card heavy, no deletes
========  ==========  ========================================

Entity deltas are emitted as *entity cards* — one node plus all of its
edges in a single event, where edges only ever reference the card's own
node and pre-existing world node ids.  That atomicity is deliberate: no
WAL record depends on resolver state outside itself, which is what makes
replay-after-crash convergent (see ``docs/ingestion.md``).  Some cards
intentionally duplicate existing entities under an alias or mangled
label to exercise the entity-resolution gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NewsConfig
from repro.data.synthetic_news import NewsGenerator
from repro.errors import IngestError
from repro.kg.synthetic import SyntheticWorld
from repro.reliability import faults
from repro.utils.rng import ensure_rng

#: Event kinds a feed can emit (checkpoints are WAL-internal).
EVENT_KINDS = ("add", "remove", "entity")

#: Per-profile workload shape: (sentences range, remove prob, entity prob,
#: probability an entity card duplicates an existing node).
_PROFILES: dict[str, dict] = {
    "rss": {
        "sentences": (3, 6),
        "remove": 0.04,
        "entity": 0.10,
        "duplicate": 0.4,
    },
    "social": {
        "sentences": (1, 3),
        "remove": 0.15,
        "entity": 0.04,
        "duplicate": 0.5,
    },
    "filings": {
        "sentences": (5, 9),
        "remove": 0.0,
        "entity": 0.22,
        "duplicate": 0.3,
    },
}

_RELATIONS = ("related_to", "member_of", "located_in", "participated_in")


@dataclass(frozen=True)
class FeedEvent:
    """One delta emitted by a feed.

    ``seq`` is monotonic (1-based) within ``source``; ``kind`` is one of
    :data:`EVENT_KINDS`; ``payload`` is the WAL-record payload *minus*
    ``fetched_at``, which the pipeline stamps at fetch time (the start
    of the freshness clock).
    """

    source: str
    seq: int
    kind: str
    payload: dict


class SyntheticFeed:
    """A deterministic, seekable event stream over a synthetic world.

    Determinism contract: event ``seq`` depends only on
    ``(world, profile, seed)`` and the seq number itself — never on wall
    clock, fetch batching, or process lifetime.  :meth:`fast_forward`
    regenerates and discards, so a restarted feed resumes exactly where
    the WAL says the crashed process got to.
    """

    def __init__(
        self,
        name: str,
        world: SyntheticWorld,
        *,
        profile: str = "rss",
        seed: int = 0,
    ) -> None:
        if profile not in _PROFILES:
            raise IngestError(
                f"unknown feed profile {profile!r}; choose from {sorted(_PROFILES)}"
            )
        self.name = name
        self.profile = profile
        self.seed = seed
        self._world = world
        self._shape = _PROFILES[profile]
        news_config = NewsConfig(
            sentences_per_doc=self._shape["sentences"], seed=seed
        )
        self._rng = ensure_rng(seed)
        self._generator = NewsGenerator(world, news_config, rng=self._rng)
        self._topics = self._generator.topics
        self._anchor_pool = [
            *world.organizations,
            *world.persons,
            *world.cities,
        ]
        self._seq = 0
        self._live_doc_ids: list[str] = []

    @property
    def seq(self) -> int:
        """Sequence number of the last emitted event (0 before the first)."""
        return self._seq

    def fetch(self, limit: int) -> list[FeedEvent]:
        """Emit up to ``limit`` next events (``ingest.source_fetch`` point)."""
        faults.fire("ingest.source_fetch")
        return [self._next_event() for _ in range(max(0, limit))]

    def fast_forward(self, seq: int) -> None:
        """Advance to just past ``seq`` by regenerating and discarding.

        Recovery calls this with the WAL's highest *synced* seq for this
        source; events the crash lost from the un-synced tail are then
        regenerated identically on the next :meth:`fetch`.
        """
        if seq < self._seq:
            raise IngestError(
                f"cannot rewind feed {self.name!r} from seq {self._seq} to {seq}"
            )
        while self._seq < seq:
            self._next_event()

    # -- event generation --------------------------------------------------

    def _next_event(self) -> FeedEvent:
        self._seq += 1
        roll = float(self._rng.random())
        if roll < self._shape["remove"] and self._live_doc_ids:
            return self._remove_event()
        if roll < self._shape["remove"] + self._shape["entity"]:
            return self._entity_event()
        return self._add_event()

    def _add_event(self) -> FeedEvent:
        topic = self._topics[int(self._rng.integers(len(self._topics)))]
        doc_id = f"{self.name}-{self._seq:06d}"
        document = self._generator.generate_document(doc_id, topic)
        self._live_doc_ids.append(doc_id)
        return FeedEvent(
            source=self.name,
            seq=self._seq,
            kind="add",
            payload={
                "doc_id": document.doc_id,
                "text": document.text,
                "title": document.title,
                "topic_id": document.topic_id,
            },
        )

    def _remove_event(self) -> FeedEvent:
        victim = self._live_doc_ids.pop(
            int(self._rng.integers(len(self._live_doc_ids)))
        )
        return FeedEvent(
            source=self.name,
            seq=self._seq,
            kind="remove",
            payload={"doc_id": victim},
        )

    def _entity_event(self) -> FeedEvent:
        """An entity card: one node + its edges, self-contained.

        With probability ``duplicate`` the card describes an *existing*
        world entity under one of its surface forms (or a mangled
        variant) — the stream's near-duplicate noise the resolution gate
        must catch.  Otherwise it introduces a genuinely new entity.
        """
        duplicate = float(self._rng.random()) < self._shape["duplicate"]
        anchors = self._pick_anchors(count=2)
        if duplicate and self._anchor_pool:
            original = self._world.graph.node(
                self._anchor_pool[
                    int(self._rng.integers(len(self._anchor_pool)))
                ]
            )
            forms = original.surface_forms()
            label = forms[int(self._rng.integers(len(forms)))]
            if self._rng.random() < 0.3:
                label = f"The {label}"  # mangled near-duplicate form
            node = {
                "id": f"{self.name}-cand-{self._seq:06d}",
                "label": label,
                "type": original.entity_type.value,
                "aliases": [],
                "description": f"feed-observed mention of {original.label}",
            }
        else:
            suffix = f"{self.name.title()}{self._seq:04d}"
            node = {
                "id": f"{self.name}-ent-{self._seq:06d}",
                "label": f"Entity {suffix}",
                "type": "ORG" if self._rng.random() < 0.5 else "PERSON",
                "aliases": [f"E-{suffix}"],
                "description": f"entity first observed on feed {self.name}",
            }
        edges = [
            {
                "source": node["id"],
                "target": anchor,
                "relation": _RELATIONS[
                    int(self._rng.integers(len(_RELATIONS)))
                ],
                "weight": 1.0,
            }
            for anchor in anchors
        ]
        return FeedEvent(
            source=self.name,
            seq=self._seq,
            kind="entity",
            payload={"node": node, "edges": edges},
        )

    def _pick_anchors(self, count: int) -> list[str]:
        if not self._anchor_pool:
            return []
        picks = self._rng.choice(
            len(self._anchor_pool),
            size=min(count, len(self._anchor_pool)),
            replace=False,
        )
        return [self._anchor_pool[int(i)] for i in picks]


class WedgedFeed:
    """A permanently failing source: every fetch raises.

    The benchmark and breaker tests use it to verify fault isolation —
    its breaker must trip open while healthy feeds keep their freshness.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.profile = "wedged"
        self.fetch_attempts = 0

    @property
    def seq(self) -> int:
        return 0

    def fetch(self, limit: int) -> list[FeedEvent]:
        faults.fire("ingest.source_fetch")
        self.fetch_attempts += 1
        raise IngestError(f"source {self.name!r} is wedged")

    def fast_forward(self, seq: int) -> None:
        if seq:
            raise IngestError("wedged source has no history to fast-forward")
