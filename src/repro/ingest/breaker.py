"""Per-source circuit breaker: closed → open → half-open.

One breaker guards each feed adapter so a wedged source (repeated fetch
failures) is cut off instead of burning the dispatch loop's time on
retries — the failure-isolation half of the freshness SLO: healthy
sources keep their freshness because the sick one stops consuming the
loop.

States follow the classic protocol:

``closed``
    Normal operation.  ``failure_threshold`` *consecutive* failures trip
    the breaker open; any success resets the count.
``open``
    All calls are refused (``allow()`` is False) until ``reset_after``
    seconds have passed on the injected clock, at which point the next
    ``allow()`` moves to half-open.
``half-open``
    Exactly one probe call is let through.  Success closes the breaker;
    failure re-opens it for another ``reset_after`` window.

The clock is injectable (defaults to ``time.monotonic``) so tests drive
state transitions without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after <= 0:
            raise ValueError("reset_after must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Transition counters for observability, keyed by entered state.
        self.transitions: dict[str, int] = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the window lapses."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_after
        ):
            self._transition(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """True when a call may proceed; consumes the half-open probe slot."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_in_flight = False
        if self._state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._probe_in_flight = False
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._transition(OPEN)

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions[state] += 1
        if state == HALF_OPEN:
            self._probe_in_flight = False
