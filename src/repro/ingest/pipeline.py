"""The streaming-ingestion pipeline: fetch → resolve → WAL → apply.

Orchestrates everything under ``repro.ingest`` into one durable loop
that feeds incremental document and KG deltas into a live
:class:`~repro.search.engine.NewsLinkEngine` while queries keep serving:

1. **Fetch** — round-robin over per-source feed adapters, each behind
   retry-with-backoff (decorrelated jitter, elapsed budget) and a
   circuit breaker, so one wedged source never stalls the others.
2. **Resolve** — entity cards pass the resolution gate *before* the WAL
   append, so the log stores canonical deltas only.
3. **WAL** — every event is appended (CRC-framed, fsync-batched) before
   it touches the engine.
4. **Apply** — deltas mutate the engine under ``engine_lock`` (thawing a
   mmap-loaded index on first mutation), with bounded retries and a
   dead-letter queue for poison events.  Freshness (fetch→searchable)
   is observed per event — the SLO.
5. **Checkpoint** — periodically the engine is re-compacted to a v3
   snapshot + KG JSON + manifest, and the WAL is truncated, keeping
   recovery O(tail).

Crash recovery (:meth:`IngestPipeline.open`) inverts the write path:
load the manifest's snapshot, replay the WAL tail (idempotent — records
at or below each source's applied watermark are skipped, as are
quarantined events), then fast-forward the deterministic feeds.  The
recovered state is bit-identical to an uninterrupted run over the same
seeds; ``tests/ingest/test_crash_recovery.py`` enforces exactly that.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.config import EngineConfig, IngestConfig
from repro.data.document import NewsDocument
from repro.errors import DocumentNotIndexedError, IngestError
from repro.ingest.breaker import CircuitBreaker
from repro.ingest.dlq import DeadLetterQueue
from repro.ingest.feeds import FeedEvent
from repro.ingest.resolve import EntityResolver
from repro.ingest.wal import Wal, WalRecord, WalScan
from repro.kg.graph import KnowledgeGraph
from repro.kg.io import graph_from_dict, graph_to_dict, save_graph_json
from repro.kg.types import Edge, EntityType, Node
from repro.obs.instruments import IngestInstruments
from repro.reliability import faults
from repro.search.engine import NewsLinkEngine
from repro.utils.retry import retry_with_backoff
from repro.utils.rng import ensure_rng

MANIFEST = "manifest.json"
WAL_DIRNAME = "wal"


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Checksummed tmp-write + fsync + rename + directory fsync."""
    body = dict(payload)
    body["checksum"] = zlib.crc32(_canonical(payload))
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(body, handle, sort_keys=True, indent=1)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_manifest(path: Path) -> dict | None:
    if not path.exists():
        return None
    body = json.loads(path.read_text(encoding="utf-8"))
    checksum = body.pop("checksum", None)
    if checksum != zlib.crc32(_canonical(body)):
        raise IngestError(f"{path}: manifest checksum mismatch")
    return body


@dataclass
class SourceState:
    """Per-source pipeline bookkeeping (breaker, counters)."""

    feed: object
    breaker: CircuitBreaker
    fetch_failures: int = 0
    fetch_retries: int = 0
    breaker_skips: int = 0
    skipped_unembeddable: int = 0
    remove_missing: int = 0
    applied_by_kind: dict[str, int] = field(
        default_factory=lambda: {"add": 0, "remove": 0, "entity": 0}
    )


class IngestPipeline:
    """Durable streaming ingestion into one live engine.

    Construct with :meth:`open` — it owns the recovery protocol.  The
    pipeline is single-writer: one thread (the caller of :meth:`step` /
    :meth:`run`, or the background thread from :meth:`start`) mutates
    the engine, and concurrent readers (the HTTP server) serialize
    against it via :attr:`engine_lock`.
    """

    def __init__(
        self,
        *,
        engine: NewsLinkEngine,
        directory: Path,
        sources: list,
        config: IngestConfig,
        wal: Wal,
        dlq: DeadLetterQueue,
        applied: dict[str, int],
        generation: int,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        names = [source.name for source in sources]
        if len(set(names)) != len(names):
            raise IngestError(f"duplicate source names: {names}")
        self.engine = engine
        self.directory = Path(directory)
        self.config = config
        self.wal = wal
        self.dlq = dlq
        self.applied = applied
        self.generation = generation
        self.engine_lock = threading.RLock()
        self.resolver = EntityResolver(engine.graph, engine.label_index)
        self.source_states: dict[str, SourceState] = {
            source.name: SourceState(
                feed=source,
                breaker=CircuitBreaker(
                    failure_threshold=config.failure_threshold,
                    reset_after=config.breaker_reset_after,
                    clock=monotonic,
                ),
            )
            for source in sources
        }
        self.checkpoints_total = 0
        self.last_recovery_seconds = 0.0
        self.replayed_records = 0
        self.last_error: str | None = None
        self._clock = clock
        self._monotonic = monotonic
        self._sleep = sleep
        self._retry_rng = ensure_rng(config.retry_seed)
        self._events_since_checkpoint = 0
        self._freshness: list[float] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._closed = False
        registry = engine.metrics_registry
        self.instruments = IngestInstruments(registry)
        self.instruments.bind(self)

    # -- construction / recovery ------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        base_graph: KnowledgeGraph,
        sources: list,
        *,
        config: IngestConfig | None = None,
        engine_config: EngineConfig | None = None,
        bootstrap_index: str | Path | None = None,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "IngestPipeline":
        """Open (or recover) the pipeline state under ``directory``.

        Fresh directory: the engine starts over a private copy of
        ``base_graph`` (ingest mutates its KG; the caller's graph stays
        untouched), optionally seeded with a batch-built index from
        ``bootstrap_index`` — typically mmap-loaded, so the first
        streamed mutation thaws it.  Existing directory: state is
        rebuilt from the manifest's snapshot + KG, the WAL tail is
        replayed idempotently, and every feed is fast-forwarded past
        what the log retained — after which fetching resumes exactly
        where the previous process (crashed or not) left off.
        ``bootstrap_index`` stays part of the recovery path only until
        the first checkpoint supersedes it, so it must outlive the
        state directory (or be checkpointed before removal).
        """
        started = monotonic()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        config = config or IngestConfig()
        engine_config = engine_config or EngineConfig()
        manifest = _read_manifest(directory / MANIFEST)
        if manifest is not None:
            graph = _load_graph_checked(directory / manifest["graph"])
            applied = {
                source: int(seq)
                for source, seq in manifest["applied"].items()
            }
            generation = int(manifest["generation"])
        else:
            graph = graph_from_dict(graph_to_dict(base_graph))
            applied = {}
            generation = 0
        engine = NewsLinkEngine(graph, engine_config)
        if manifest is not None:
            engine.load_index(directory / manifest["snapshot"])
        elif bootstrap_index is not None and Path(bootstrap_index).exists():
            engine.load_index(bootstrap_index)
        wal, scan = Wal.open(
            directory / WAL_DIRNAME,
            sync_every=config.sync_every,
            segment_bytes=config.segment_bytes,
        )
        dlq = DeadLetterQueue(directory)
        pipeline = cls(
            engine=engine,
            directory=directory,
            sources=sources,
            config=config,
            wal=wal,
            dlq=dlq,
            applied=applied,
            generation=generation,
            clock=clock,
            monotonic=monotonic,
            sleep=sleep,
        )
        pipeline._replay(scan)
        for name, state in pipeline.source_states.items():
            state.feed.fast_forward(
                max(applied.get(name, 0), scan.appended.get(name, 0))
            )
        pipeline.last_recovery_seconds = monotonic() - started
        return pipeline

    def _replay(self, scan: WalScan) -> None:
        """Re-apply the WAL tail on top of the recovered snapshot."""
        for record in self.wal.replay():
            if record.type == "checkpoint":
                continue
            if record.seq <= self.applied.get(record.source, 0):
                continue
            if (record.source, record.seq) in self.dlq:
                self.applied[record.source] = record.seq
                continue
            self._apply_record(record)
            self.applied[record.source] = record.seq
            self.replayed_records += 1
            self._events_since_checkpoint += 1

    # -- the dispatch loop -------------------------------------------------

    def step(self) -> int:
        """One round-robin pass over every source; returns events admitted."""
        if self._closed:
            raise IngestError("step() on a closed pipeline")
        admitted = 0
        for name, state in self.source_states.items():
            if not state.breaker.allow():
                state.breaker_skips += 1
                continue
            feed = state.feed

            def _on_retry(attempt: int, exc: BaseException, state=state) -> None:
                state.fetch_retries += 1

            try:
                events = retry_with_backoff(
                    lambda feed=feed: feed.fetch(self.config.batch_size),
                    attempts=self.config.fetch_attempts,
                    base_delay=self.config.fetch_base_delay,
                    max_delay=self.config.fetch_max_delay,
                    jitter="decorrelated",
                    rng=self._retry_rng,
                    max_elapsed=self.config.fetch_max_elapsed,
                    sleep=self._sleep,
                    on_retry=_on_retry,
                )
            except Exception:
                state.fetch_failures += 1
                state.breaker.record_failure()
                continue
            state.breaker.record_success()
            fetched_at = self._clock()
            for event in events:
                admitted += self._admit(event, fetched_at)
        if (
            self.config.checkpoint_every
            and self._events_since_checkpoint >= self.config.checkpoint_every
        ):
            self.checkpoint()
        return admitted

    def run(self, rounds: int) -> int:
        """Run ``rounds`` dispatch passes; returns total events admitted."""
        return sum(self.step() for _ in range(rounds))

    def start(self, interval: float = 0.5) -> None:
        """Run the dispatch loop on a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise IngestError("pipeline already started")
        self._stop.clear()
        self.last_error = None

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.step()
                except Exception as exc:  # noqa: BLE001 - thread boundary
                    # A dispatch failure (e.g. an unrecoverable WAL
                    # error) stops ingestion but must not die silently:
                    # it lands in /stats and the next step() re-raises.
                    self.last_error = f"{type(exc).__name__}: {exc}"
                    return
                self._stop.wait(interval)

        self._thread = threading.Thread(
            target=loop, name="ingest-dispatch", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (no-op when not started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def close(self) -> None:
        """Drain: stop the loop, flush the WAL, commit a final checkpoint.

        The final checkpoint makes restart recovery O(tail): a clean
        shutdown leaves an empty WAL tail, so the next :meth:`open` is a
        pure snapshot load.  Skipped when nothing changed since the last
        checkpoint.  Idempotent.
        """
        if self._closed:
            return
        self.stop()
        with self.engine_lock:
            self.wal.sync()
            if self._events_since_checkpoint > 0:
                self.checkpoint()
            self.wal.close()
        self._closed = True

    # -- admission + apply -------------------------------------------------

    def _admit(self, event: FeedEvent, fetched_at: float) -> int:
        payload = dict(event.payload)
        if event.kind == "entity":
            resolved = self.resolver.resolve(payload)
            payload = {
                "node": resolved.node,
                "edges": resolved.edges,
                "decision": resolved.decision,
            }
        payload["fetched_at"] = fetched_at
        record = WalRecord(
            type=event.kind,
            source=event.source,
            seq=event.seq,
            payload=payload,
        )
        self.wal.append(record)
        self._apply_record(record)
        self.applied[event.source] = event.seq
        self._events_since_checkpoint += 1
        return 1

    def _apply_record(self, record: WalRecord) -> bool:
        """Apply one WAL record with bounded retries; DLQ on exhaustion.

        Returns True when the record reached the engine (including
        deterministic no-ops like removing a never-indexed document) and
        False when it was quarantined.
        """
        state = self.source_states.get(record.source)
        with self.engine_lock:
            last_error: Exception | None = None
            for _ in range(self.config.apply_retries + 1):
                try:
                    faults.fire("ingest.apply")
                    self._apply_once(record, state)
                    last_error = None
                    break
                except Exception as exc:  # noqa: BLE001 - DLQ boundary
                    last_error = exc
            if last_error is not None:
                self.dlq.quarantine(
                    record.source,
                    record.seq,
                    record.type,
                    f"{type(last_error).__name__}: {last_error}",
                    record.payload,
                )
                return False
        fetched_at = record.payload.get("fetched_at")
        if fetched_at is not None:
            freshness = max(0.0, self._clock() - float(fetched_at))
            self.instruments.freshness.observe(freshness)
            self._freshness.append(freshness)
            overflow = len(self._freshness) - self.config.freshness_window
            if overflow > 0:
                del self._freshness[:overflow]
        if state is not None:
            state.applied_by_kind[record.type] = (
                state.applied_by_kind.get(record.type, 0) + 1
            )
        return True

    def _apply_once(self, record: WalRecord, state: SourceState | None) -> None:
        payload = record.payload
        if record.type == "add":
            document = NewsDocument(
                doc_id=payload["doc_id"],
                text=payload["text"],
                title=payload.get("title", ""),
                topic_id=payload.get("topic_id", ""),
            )
            if not self.engine.index_document(document):
                # Unembeddable: the engine filters such documents from
                # the corpus (paper behaviour) — deterministic, not poison.
                if state is not None:
                    state.skipped_unembeddable += 1
        elif record.type == "remove":
            try:
                self.engine.remove_document(payload["doc_id"])
            except DocumentNotIndexedError:
                # The matching add was skipped as unembeddable (or the
                # feed retracted before we ever saw the add) — same
                # no-op on the live path and on replay.
                if state is not None:
                    state.remove_missing += 1
        elif record.type == "entity":
            self._apply_entity(payload)
        else:
            raise IngestError(f"unknown WAL record type {record.type!r}")

    def _apply_entity(self, payload: dict) -> None:
        graph = self.engine.graph
        raw = payload["node"]
        if payload.get("decision") in ("new", "exact"):
            node = Node(
                node_id=str(raw["id"]),
                label=str(raw["label"]),
                entity_type=EntityType.from_string(raw.get("type", "OTHER")),
                aliases=tuple(raw.get("aliases", ())),
                description=str(raw.get("description", "")),
            )
            graph.add_node(node)
            # New surface forms must reach NER, or documents mentioning
            # the entity will never link to it.
            self.engine.label_index.register(node)
        for edge in payload.get("edges", ()):
            graph.add_edge(
                Edge(
                    source=str(edge["source"]),
                    target=str(edge["target"]),
                    relation=str(edge["relation"]),
                    weight=float(edge.get("weight", 1.0)),
                )
            )

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> int:
        """Compact: snapshot the engine, commit a manifest, truncate the WAL.

        Commit order makes every crash window safe (docs/ingestion.md):
        snapshot and KG are written under generation-suffixed names, the
        manifest rename is the atomic commit point, and only then is the
        WAL reset.  A crash before the manifest recovers from the old
        generation + full WAL; after it, replay skips everything the new
        snapshot already contains.  Returns the new generation.
        """
        with self.engine_lock:
            self.wal.sync()
            generation = self.generation + 1
            snapshot_name = f"snapshot-{generation:06d}.nlx"
            graph_name = f"kg-{generation:06d}.json"
            self.engine.save_index(self.directory / snapshot_name)
            _atomic_graph_save(self.engine.graph, self.directory / graph_name)
            faults.fire("ingest.checkpoint")
            _atomic_write_json(
                self.directory / MANIFEST,
                {
                    "generation": generation,
                    "applied": dict(self.applied),
                    "snapshot": snapshot_name,
                    "graph": graph_name,
                },
            )
            self.generation = generation
            self.wal.reset(generation, self.applied)
            self._events_since_checkpoint = 0
            self.checkpoints_total += 1
            for pattern in ("snapshot-*.nlx", "kg-*.json"):
                for stale in self.directory.glob(pattern):
                    if stale.name not in (snapshot_name, graph_name):
                        stale.unlink()
        return generation

    # -- introspection -----------------------------------------------------

    def freshness_percentiles(self) -> dict[str, float | int]:
        """p50/p99 over the retained freshness window."""
        samples = sorted(self._freshness)
        if not samples:
            return {"count": 0, "p50": 0.0, "p99": 0.0}
        def pct(q: float) -> float:
            index = min(len(samples) - 1, int(q * len(samples)))
            return samples[index]
        return {"count": len(samples), "p50": pct(0.50), "p99": pct(0.99)}

    def stats_payload(self) -> dict:
        """The ``/stats`` ingest section (JSON-serializable)."""
        sources = {}
        for name, state in self.source_states.items():
            sources[name] = {
                "profile": getattr(state.feed, "profile", "unknown"),
                "seq_applied": self.applied.get(name, 0),
                "breaker": state.breaker.state,
                "breaker_transitions": dict(state.breaker.transitions),
                "breaker_skips": state.breaker_skips,
                "fetch_failures": state.fetch_failures,
                "fetch_retries": state.fetch_retries,
                "applied": dict(state.applied_by_kind),
                "skipped_unembeddable": state.skipped_unembeddable,
                "remove_missing": state.remove_missing,
            }
        return {
            "generation": self.generation,
            "checkpoints": self.checkpoints_total,
            "recovery_seconds": self.last_recovery_seconds,
            "replayed_records": self.replayed_records,
            "wal": {
                "records": self.wal.appends_total,
                "syncs": self.wal.syncs_total,
                "segments": self.wal.segment_count,
                "bytes": self.wal.size_bytes,
            },
            "dlq": len(self.dlq),
            "last_error": self.last_error,
            "resolution": dict(self.resolver.decisions),
            "dropped_edges": self.resolver.dropped_edges_total,
            "freshness": self.freshness_percentiles(),
            "sources": sources,
        }


def _load_graph_checked(path: Path) -> KnowledgeGraph:
    if not path.exists():
        raise IngestError(f"manifest references missing KG file {path}")
    return graph_from_dict(
        json.loads(path.read_text(encoding="utf-8"))
    )


def _atomic_graph_save(graph: KnowledgeGraph, path: Path) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    save_graph_json(graph, tmp)
    with open(tmp, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, path)
