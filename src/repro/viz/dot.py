"""Graphviz DOT rendering of embeddings and overlaps (Figures 1, 4, 6).

The emitted markup follows the paper's visual language: the query
embedding is blue, the result embedding green, their overlap orange, and
common-ancestor roots are drawn as boxes (Figure 4's square nodes).
"""

from __future__ import annotations

from repro.core.document_embedding import DocumentEmbedding
from repro.kg.graph import KnowledgeGraph
from repro.kg.types import OrientedEdge

_QUERY_COLOR = "#4c72b0"  # blue
_RESULT_COLOR = "#55a868"  # green
_OVERLAP_COLOR = "#dd8452"  # orange


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _node_line(
    node_id: str,
    label: str,
    color: str,
    shape: str = "ellipse",
) -> str:
    return (
        f"  {_quote(node_id)} [label={_quote(label)}, shape={shape}, "
        f'style=filled, fillcolor="{color}", fontcolor="white"];'
    )


def _edge_line(edge: OrientedEdge) -> str:
    kg_edge = edge.as_kg_edge()
    return (
        f"  {_quote(kg_edge.source)} -> {_quote(kg_edge.target)} "
        f"[label={_quote(kg_edge.relation)}];"
    )


def embedding_to_dot(
    embedding: DocumentEmbedding,
    graph: KnowledgeGraph,
    title: str = "embedding",
    color: str = _QUERY_COLOR,
) -> str:
    """Render one document embedding as a DOT digraph.

    Roots (lowest common ancestors) are boxes, as in the paper's Figure 4.
    """
    roots = set(embedding.roots)
    lines = [f"digraph {_quote(title)} {{", "  rankdir=BT;"]
    for node_id in sorted(embedding.nodes):
        label = graph.node(node_id).label
        shape = "box" if node_id in roots else "ellipse"
        lines.append(_node_line(node_id, label, color, shape))
    for edge in sorted(
        embedding.edges, key=lambda e: (e.source, e.target, e.relation)
    ):
        lines.append(_edge_line(edge))
    lines.append("}")
    return "\n".join(lines)


def overlap_to_dot(
    query_embedding: DocumentEmbedding,
    result_embedding: DocumentEmbedding,
    graph: KnowledgeGraph,
    title: str = "overlap",
) -> str:
    """Render a query/result embedding pair with the overlap in orange.

    This is the Figure 1 / Figure 6 artifact: blue = query-only nodes,
    green = result-only nodes, orange = shared evidence.
    """
    shared = query_embedding.nodes & result_embedding.nodes
    lines = [f"digraph {_quote(title)} {{", "  rankdir=BT;"]
    for node_id in sorted(query_embedding.nodes | result_embedding.nodes):
        if node_id in shared:
            color = _OVERLAP_COLOR
        elif node_id in query_embedding.nodes:
            color = _QUERY_COLOR
        else:
            color = _RESULT_COLOR
        roots = set(query_embedding.roots) | set(result_embedding.roots)
        shape = "box" if node_id in roots else "ellipse"
        lines.append(_node_line(node_id, graph.node(node_id).label, color, shape))
    seen: set[tuple[str, str, str]] = set()
    for edge in sorted(
        query_embedding.edges | result_embedding.edges,
        key=lambda e: (e.source, e.target, e.relation),
    ):
        key = edge.as_kg_edge().key()
        if key in seen:
            continue
        seen.add(key)
        lines.append(_edge_line(edge))
    lines.append("}")
    return "\n".join(lines)


def graph_to_dot(graph: KnowledgeGraph, title: str = "kg") -> str:
    """Render a whole (small) knowledge graph as DOT."""
    lines = [f"digraph {_quote(title)} {{"]
    for node in graph.nodes():
        lines.append(
            f"  {_quote(node.node_id)} [label={_quote(node.label)}];"
        )
    for edge in graph.edges():
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(edge.relation)}];"
        )
    lines.append("}")
    return "\n".join(lines)
