"""Visualization: Graphviz DOT export of subgraph embeddings.

The paper's figures render query/result embeddings with the overlap
highlighted; these helpers emit the equivalent DOT markup so any Graphviz
renderer reproduces them.
"""

from repro.viz.dot import embedding_to_dot, overlap_to_dot, graph_to_dot

__all__ = ["embedding_to_dot", "overlap_to_dot", "graph_to_dot"]
