"""Maximal entity co-occurrence sets (paper Definition 1).

Given the entity label sets identified for all news segments of a document,
only sets that are not proper subsets of another are kept (and exact
duplicates are kept once).  This reduces the number of subgraph-embedding
searches the NE component must run per document.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class EntityGroup:
    """A group of co-occurring entity labels from one news segment.

    Attributes:
        labels: the normalized entity labels in the group.
        segment_index: index of the originating news segment.
    """

    labels: frozenset[str]
    segment_index: int

    def __len__(self) -> int:
        return len(self.labels)


def maximal_cooccurrence_sets(
    groups: Sequence[frozenset[str]],
) -> list[frozenset[str]]:
    """Return the maximal entity co-occurrence set ``U_m`` (Definition 1).

    A label set ``L_i`` survives iff it is not a proper subset of any other
    input set; among equal sets only the first occurrence is kept.  Output
    order follows first occurrence in the input.

    >>> maximal_cooccurrence_sets(
    ...     [frozenset({"a", "b"}), frozenset({"a"}), frozenset({"a", "b"})]
    ... )
    [frozenset({'a', 'b'})]
    """
    kept: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    for index, candidate in enumerate(groups):
        if not candidate or candidate in seen:
            continue
        is_proper_subset = any(
            candidate < other for other in groups if other is not candidate
        )
        if is_proper_subset:
            continue
        # Equal sets elsewhere are fine (Definition 1 keeps one of them);
        # ``seen`` already guarantees only the first is emitted.
        del index
        kept.append(candidate)
        seen.add(candidate)
    return kept


def maximal_groups(groups: Sequence[EntityGroup]) -> list[EntityGroup]:
    """Definition 1 applied to :class:`EntityGroup` objects.

    Keeps the earliest segment's group when several groups carry equal
    label sets.
    """
    label_sets = [group.labels for group in groups]
    surviving = maximal_cooccurrence_sets(label_sets)
    result: list[EntityGroup] = []
    used: set[frozenset[str]] = set()
    for labels in surviving:
        for group in groups:
            if group.labels == labels and labels not in used:
                result.append(group)
                used.add(labels)
                break
    return result
