"""Regex tokenizer with character offsets.

Offsets are preserved so the NER can report exact mention spans and so
entity density (entities per term, §VII-B) can be computed per sentence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_PATTERN = re.compile(
    r"""
    [A-Za-z]+(?:'[A-Za-z]+)?   # words, with internal apostrophe (don't)
    | \d+(?:[.,]\d+)*          # numbers like 1,000 or 3.14
    | [^\w\s]                  # single punctuation mark
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A token with its surface text and character span.

    Attributes:
        text: the token surface form.
        start: character offset of the first character.
        end: character offset one past the last character.
    """

    text: str
    start: int
    end: int

    @property
    def is_word(self) -> bool:
        """True for alphabetic tokens (not numbers or punctuation)."""
        return self.text[:1].isalpha()

    @property
    def is_capitalized(self) -> bool:
        """True if the token begins with an uppercase letter."""
        return self.text[:1].isupper()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into :class:`Token` objects with offsets."""
    return [
        Token(match.group(), match.start(), match.end())
        for match in _TOKEN_PATTERN.finditer(text)
    ]


def tokenize_words(text: str, lowercase: bool = True) -> list[str]:
    """Word-only tokenization (drops numbers and punctuation)."""
    words = [token.text for token in tokenize(text) if token.is_word]
    if lowercase:
        words = [word.lower() for word in words]
    return words
