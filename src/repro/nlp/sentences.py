"""Sentence segmentation.

The paper uses "every sentence as a news segment, as it guarantees the
semantic consistence of occurring entities" (§VII-A4); this splitter feeds
the per-sentence entity grouping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Common newswire abbreviations that a naive period split would break on.
_ABBREVIATIONS = {
    "mr", "mrs", "ms", "dr", "prof", "gen", "sen", "rep", "gov", "sgt",
    "col", "lt", "st", "jr", "sr", "vs", "etc", "inc", "ltd", "co", "corp",
    "u.s", "u.k", "u.n", "e.g", "i.e", "jan", "feb", "mar", "apr", "jun",
    "jul", "aug", "sep", "sept", "oct", "nov", "dec",
}

_BOUNDARY = re.compile(r"([.!?]+)(\s+|$)")


@dataclass(frozen=True)
class Sentence:
    """A sentence with its character span in the source document."""

    text: str
    start: int
    end: int


def _ends_with_abbreviation(before_punctuation: str) -> bool:
    """True when the text right before a period ends in an abbreviation."""
    parts = before_punctuation.rsplit(None, 1)
    if not parts:
        return False
    word = parts[-1].lower().rstrip(".")
    if not word:
        return False
    return word in _ABBREVIATIONS or (len(word) == 1 and word.isalpha())


def split_sentences(text: str) -> list[Sentence]:
    """Split ``text`` into sentences, robust to common abbreviations.

    Paragraph breaks (blank lines) always terminate a sentence even without
    closing punctuation, which matters for headline-style news text.
    """
    sentences: list[Sentence] = []
    for block_start, block in _paragraph_blocks(text):
        cursor = 0
        for match in _BOUNDARY.finditer(block):
            # Only '.' can belong to an abbreviation; '!'/'?' always split.
            if match.group(1).startswith(".") and _ends_with_abbreviation(
                block[cursor : match.start(1)]
            ):
                continue
            _append_sentence(
                sentences, block, cursor, match.end(1), block_start
            )
            cursor = match.end()
        _append_sentence(sentences, block, cursor, len(block), block_start)
    return sentences


def _append_sentence(
    sentences: list[Sentence],
    block: str,
    start: int,
    end: int,
    block_offset: int,
) -> None:
    segment = block[start:end]
    stripped = segment.strip()
    if not stripped:
        return
    lead = len(segment) - len(segment.lstrip())
    absolute_start = block_offset + start + lead
    sentences.append(
        Sentence(
            text=stripped,
            start=absolute_start,
            end=absolute_start + len(stripped),
        )
    )


def _paragraph_blocks(text: str) -> list[tuple[int, str]]:
    blocks: list[tuple[int, str]] = []
    start = 0
    for match in re.finditer(r"\n\s*\n", text):
        block = text[start : match.start()]
        if block.strip():
            blocks.append((start, block))
        start = match.end()
    tail = text[start:]
    if tail.strip():
        blocks.append((start, tail))
    return blocks
