"""Gazetteer named-entity recognition (spaCy substitute).

The recognizer proposes capitalized spans and resolves them against the KG
label index with exact matching (§IV).  Spans that look like entities but
match no KG node are still *identified* (with an empty node set) — the
ratio of matched to identified mentions is the paper's Table V entity
matching ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NerConfig
from repro.kg.label_index import LabelIndex
from repro.kg.types import EntityType
from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import Token, tokenize


@dataclass(frozen=True)
class EntityMention:
    """An entity mention in text.

    Attributes:
        text: the exact surface span.
        start: character offset (relative to the text the NER was given).
        end: one-past-the-end character offset.
        node_ids: KG nodes whose surface forms exact-match this mention;
            empty when the mention is identified but unmatched.
        entity_type: the type of a matching KG node, or ``OTHER`` when
            unmatched.
    """

    text: str
    start: int
    end: int
    node_ids: frozenset[str]
    entity_type: EntityType = EntityType.OTHER

    @property
    def matched(self) -> bool:
        """True when the mention resolves to at least one KG node."""
        return bool(self.node_ids)


class GazetteerNer:
    """Longest-match gazetteer NER over a :class:`LabelIndex`."""

    def __init__(self, label_index: LabelIndex, config: NerConfig | None = None) -> None:
        self._index = label_index
        self._config = config or NerConfig()

    @property
    def config(self) -> NerConfig:
        """The active NER configuration."""
        return self._config

    def recognize(self, text: str) -> list[EntityMention]:
        """Recognize entity mentions in ``text`` (one sentence/segment).

        Scans left to right, preferring the longest span (up to
        ``max_gram`` tokens) that exact-matches the KG; failing that, a
        maximal run of capitalized words becomes an identified-but-unmatched
        mention.  Type-filtered per the paper (§IV).
        """
        tokens = tokenize(text)
        mentions: list[EntityMention] = []
        index = 0
        while index < len(tokens):
            if not self._can_start_span(tokens, index):
                index += 1
                continue
            mention, consumed = self._match_at(text, tokens, index)
            if mention is not None:
                if self._type_allowed(mention):
                    mentions.append(mention)
                index += consumed
            else:
                index += 1
        return mentions

    # ------------------------------------------------------------------
    def _can_start_span(self, tokens: list[Token], index: int) -> bool:
        token = tokens[index]
        if not token.is_word:
            return False
        if self._config.require_capitalized and not token.is_capitalized:
            return False
        return not is_stopword(token.text)

    def _span_tokens_ok(
        self,
        tokens: list[Token],
        start: int,
        length: int,
        require_capitalized: bool | None = None,
    ) -> bool:
        if require_capitalized is None:
            require_capitalized = self._config.require_capitalized
        span = tokens[start : start + length]
        if len(span) < length:
            return False
        for position, token in enumerate(span):
            if not token.is_word:
                return False
            interior = 0 < position < length - 1
            if interior and is_stopword(token.text):
                # Lowercase function words are fine inside a name
                # ("Bank of Pakistan").
                continue
            if require_capitalized and not token.is_capitalized:
                return False
        # Spans must not end in a stopword ("Bank of" is not an entity).
        return not is_stopword(span[-1].text)

    def _match_at(
        self, text: str, tokens: list[Token], start: int
    ) -> tuple[EntityMention | None, int]:
        # 1) longest gazetteer match wins
        for length in range(self._config.max_gram, 0, -1):
            if not self._span_tokens_ok(tokens, start, length):
                continue
            surface = text[tokens[start].start : tokens[start + length - 1].end]
            node_ids = self._index.try_lookup(surface)
            if node_ids:
                return (
                    EntityMention(
                        text=surface,
                        start=tokens[start].start,
                        end=tokens[start + length - 1].end,
                        node_ids=node_ids,
                        entity_type=self._dominant_type(node_ids),
                    ),
                    length,
                )
        # 2) heuristic: a maximal capitalized run is an unmatched mention.
        # Capitalization is required here regardless of config — without
        # the gazetteer, casing is the only entity signal.
        length = 0
        while self._span_tokens_ok(tokens, start, length + 1, require_capitalized=True):
            length += 1
            if length >= self._config.max_gram:
                break
        if length == 0:
            return None, 1
        if length == 1 and start == 0:
            # A lone capitalized sentence-initial word is most likely just
            # sentence case, not an entity.
            return None, 1
        surface = text[tokens[start].start : tokens[start + length - 1].end]
        mention = EntityMention(
            text=surface,
            start=tokens[start].start,
            end=tokens[start + length - 1].end,
            node_ids=frozenset(),
        )
        return mention, length

    def _dominant_type(self, node_ids: frozenset[str]) -> EntityType:
        graph = self._index.graph
        types = sorted(graph.node(node_id).entity_type.value for node_id in node_ids)
        return EntityType.from_string(types[0]) if types else EntityType.OTHER

    def _type_allowed(self, mention: EntityMention) -> bool:
        if not mention.matched:
            return True
        return mention.entity_type.value in self._config.allowed_types
