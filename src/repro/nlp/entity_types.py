"""Entity-type policy for NER (paper §IV).

The paper keeps every entity type "except those representing numbers or
quantities", listing person, nationality/religious/political groups,
facilities, organization, GPE, location, product, event, work of art, law
and language.
"""

from __future__ import annotations

from repro.kg.types import EntityType

#: The paper's allowed types (§IV), excluding numeric/quantity types.
PAPER_ALLOWED_TYPES: frozenset[EntityType] = frozenset(
    {
        EntityType.PERSON,
        EntityType.NORP,
        EntityType.FAC,
        EntityType.ORG,
        EntityType.GPE,
        EntityType.LOC,
        EntityType.PRODUCT,
        EntityType.EVENT,
        EntityType.WORK_OF_ART,
        EntityType.LAW,
        EntityType.LANGUAGE,
    }
)

#: spaCy types the paper's filter drops.
EXCLUDED_TYPE_NAMES: frozenset[str] = frozenset(
    {"DATE", "TIME", "PERCENT", "MONEY", "QUANTITY", "ORDINAL", "CARDINAL"}
)


def is_allowed(entity_type: EntityType, allowed_names: tuple[str, ...]) -> bool:
    """True when ``entity_type`` is in the configured allow-list."""
    return entity_type.value in allowed_names
