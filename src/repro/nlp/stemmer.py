"""Porter stemmer, implemented from the original 1980 paper.

Used by the analyzer chain of the search engine (Lucene's default English
analysis applies stemming); implemented from scratch because no NLP
dependency is available offline.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    forms = []
    for index in range(len(stem)):
        forms.append("c" if _is_consonant(stem, index) else "v")
    collapsed = "".join(forms)
    # collapse runs
    reduced = []
    for char in collapsed:
        if not reduced or reduced[-1] != char:
            reduced.append(char)
    pattern = "".join(reduced)
    if pattern.startswith("c"):
        pattern = pattern[1:]
    if pattern.endswith("v"):
        pattern = pattern[:-1]
    # What remains alternates v/c, starting with 'v' and ending with 'c',
    # so each VC pair contributes exactly two characters.
    return len(pattern) // 2


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure - 1:
        return stem + replacement
    return word


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    applied = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        applied = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        applied = True
    if applied:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_RULES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem.endswith(("s", "t")) and _measure(stem) > 1:
            return stem
    return word


def _step_5(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem
    if word.endswith("ll") and _measure(word) > 1:
        word = word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem ``word`` with the Porter algorithm.

    Words of length <= 2 are returned unchanged, per the original paper.
    """
    word = word.lower()
    if len(word) <= 2 or not word.isalpha():
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5(word)
    return word
