"""The NLP pipeline: document -> news segments -> maximal entity groups.

Mirrors the paper's NLP component (§III, §IV): sentence segmentation
(every sentence is a news segment), NER per segment, and the Definition 1
reduction to the maximal entity co-occurrence set, which is what the NE
component embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import NerConfig
from repro.kg.label_index import LabelIndex, normalize_label
from repro.nlp.cooccurrence import EntityGroup, maximal_groups
from repro.nlp.ner import EntityMention, GazetteerNer
from repro.nlp.sentences import Sentence, split_sentences
from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import tokenize


@dataclass(frozen=True)
class NewsSegment:
    """One news segment (a sentence) with its recognized mentions.

    Attributes:
        index: position of the segment within the document.
        sentence: the sentence with character offsets into the document.
        mentions: entity mentions; offsets are relative to the sentence.
    """

    index: int
    sentence: Sentence
    mentions: tuple[EntityMention, ...]

    @property
    def identified_labels(self) -> frozenset[str]:
        """Normalized labels of all identified mentions."""
        return frozenset(normalize_label(m.text) for m in self.mentions)

    @property
    def matched_labels(self) -> frozenset[str]:
        """Normalized labels of mentions that resolve to KG nodes."""
        return frozenset(
            normalize_label(m.text) for m in self.mentions if m.matched
        )

    @property
    def entity_density(self) -> float:
        """Entities per term (§VII-B), used to select query sentences."""
        terms = self._num_terms
        if not terms:
            return 0.0
        return len(self.mentions) / terms

    @property
    def matched_entity_density(self) -> float:
        """KG-matched entities per term.

        The paper computes density over all recognized entities, but its
        matching ratio is ~97% so the two are nearly identical there; with
        a noisier gazetteer, counting only matched mentions selects query
        sentences that actually carry KG context.
        """
        terms = self._num_terms
        if not terms:
            return 0.0
        return sum(1 for m in self.mentions if m.matched) / terms

    @property
    def _num_terms(self) -> int:
        tokens = [t for t in tokenize(self.sentence.text) if t.is_word]
        return sum(1 for t in tokens if not is_stopword(t.text))


@dataclass
class ProcessedDocument:
    """Full NLP output for one document.

    Attributes:
        doc_id: the document's identifier.
        text: the original text.
        segments: all news segments in order.
        groups: the **maximal** entity co-occurrence groups (Definition 1),
            restricted to KG-matched labels — what the NE component embeds.
        label_sources: normalized label -> matching KG node ids, unioned
            over the document (exact matching is position-independent).
    """

    doc_id: str
    text: str
    segments: list[NewsSegment]
    groups: list[EntityGroup]
    label_sources: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def identified_count(self) -> int:
        """Total identified mentions across segments."""
        return sum(len(segment.mentions) for segment in self.segments)

    @property
    def matched_count(self) -> int:
        """Total KG-matched mentions across segments."""
        return sum(
            1
            for segment in self.segments
            for mention in segment.mentions
            if mention.matched
        )

    @property
    def matching_ratio(self) -> float:
        """Matched / identified mentions (Table V); 1.0 when none found."""
        if self.identified_count == 0:
            return 1.0
        return self.matched_count / self.identified_count

    def group_sources(self, group: EntityGroup) -> dict[str, frozenset[str]]:
        """``S(l)`` for each label of ``group``."""
        return {label: self.label_sources[label] for label in group.labels}


class NlpPipeline:
    """End-to-end NLP component.

    Args:
        label_index: the exact-match ``S(l)`` index.
        config: NER options.
        segment_window: how many consecutive sentences form one entity
            co-occurrence group.  The paper uses 1 ("every sentence as a
            news segment"); larger windows trade the groups' semantic
            tightness for richer groups on entity-sparse prose.
    """

    def __init__(
        self,
        label_index: LabelIndex,
        config: NerConfig | None = None,
        segment_window: int = 1,
    ) -> None:
        if segment_window < 1:
            raise ValueError("segment_window must be >= 1")
        self._ner = GazetteerNer(label_index, config)
        self._segment_window = segment_window

    @property
    def ner(self) -> GazetteerNer:
        """The underlying recognizer."""
        return self._ner

    @property
    def segment_window(self) -> int:
        """Sentences per entity co-occurrence group."""
        return self._segment_window

    def process(self, text: str, doc_id: str = "") -> ProcessedDocument:
        """Run the full pipeline on ``text``.

        Each sliding window of ``segment_window`` sentences yields one
        entity group; the groups are reduced by Definition 1 into the
        maximal entity co-occurrence set.
        """
        segments: list[NewsSegment] = []
        label_sources: dict[str, frozenset[str]] = {}
        for index, sentence in enumerate(split_sentences(text)):
            mentions = tuple(self._ner.recognize(sentence.text))
            segments.append(NewsSegment(index, sentence, mentions))
            for mention in mentions:
                if mention.matched:
                    label = normalize_label(mention.text)
                    existing = label_sources.get(label, frozenset())
                    label_sources[label] = existing | mention.node_ids
        raw_groups = self._window_groups(segments)
        groups = maximal_groups(raw_groups)
        return ProcessedDocument(
            doc_id=doc_id,
            text=text,
            segments=segments,
            groups=groups,
            label_sources=label_sources,
        )

    def _window_groups(self, segments: list[NewsSegment]) -> list[EntityGroup]:
        window = self._segment_window
        if not segments:
            return []
        groups: list[EntityGroup] = []
        last_start = max(0, len(segments) - window)
        for start in range(last_start + 1):
            labels: frozenset[str] = frozenset()
            for segment in segments[start : start + window]:
                labels |= segment.matched_labels
            if labels:
                groups.append(EntityGroup(labels=labels, segment_index=start))
        return groups
