"""NLP component (paper §IV): tokenization, sentence segmentation, NER and
maximal entity co-occurrence sets.

The paper implements this component with spaCy; here it is built from
scratch: a regex tokenizer, a rule/gazetteer NER over the KG label index
(with the paper's entity-type filter), and the Definition 1 reduction of
per-segment entity groups.
"""

from repro.nlp.tokenizer import Token, tokenize, tokenize_words
from repro.nlp.sentences import split_sentences, Sentence
from repro.nlp.stopwords import STOPWORDS, is_stopword
from repro.nlp.stemmer import porter_stem
from repro.nlp.ner import EntityMention, GazetteerNer
from repro.nlp.cooccurrence import maximal_cooccurrence_sets, EntityGroup
from repro.nlp.disambiguation import DisambiguatingEmbedder, disambiguate_group
from repro.nlp.pipeline import NlpPipeline, ProcessedDocument, NewsSegment

__all__ = [
    "DisambiguatingEmbedder",
    "disambiguate_group",
    "Token",
    "tokenize",
    "tokenize_words",
    "Sentence",
    "split_sentences",
    "STOPWORDS",
    "is_stopword",
    "porter_stem",
    "EntityMention",
    "GazetteerNer",
    "maximal_cooccurrence_sets",
    "EntityGroup",
    "NlpPipeline",
    "ProcessedDocument",
    "NewsSegment",
]
