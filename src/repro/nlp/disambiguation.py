"""Coherence-based entity disambiguation.

Exact label matching maps ambiguous surface forms ("Lahore" names two KG
nodes in the paper's Table I) to *every* candidate node.  The G* search
tolerates that — ``D(l, v)`` minimizes over ``S(l)`` — but wrong-sense
candidates can hijack the minimum when they happen to sit near the root.

This extension filters each ambiguous label's candidate set by *coherence
with the rest of its co-occurrence group*: a candidate survives if it lies
within ``max_distance`` (bidirected) of some candidate of another label in
the same group.  When no candidate survives, the original set is kept —
disambiguation must never make a group unembeddable.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.document_embedding import SegmentEmbedder
from repro.core.ancestor_graph import CommonAncestorGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.traversal import MultiSourceShortestPaths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.deadline import Deadline


def disambiguate_group(
    graph: KnowledgeGraph,
    label_sources: Mapping[str, frozenset[str]],
    max_distance: float = 3.0,
) -> dict[str, frozenset[str]]:
    """Filter ambiguous candidate sets by group coherence.

    Labels with a single candidate pass through untouched; groups with a
    single label cannot be disambiguated and pass through whole.
    """
    labels = list(label_sources)
    if len(labels) < 2:
        return dict(label_sources)
    result: dict[str, frozenset[str]] = {}
    for label in labels:
        candidates = label_sources[label]
        if len(candidates) <= 1:
            result[label] = candidates
            continue
        other_sources = frozenset().union(
            *(label_sources[other] for other in labels if other != label)
        )
        if not other_sources:
            result[label] = candidates
            continue
        search = MultiSourceShortestPaths(
            graph, other_sources, max_depth=max_distance
        )
        search.run_to_completion()
        coherent = frozenset(
            candidate for candidate in candidates if search.is_settled(candidate)
        )
        result[label] = coherent if coherent else candidates
    return result


@dataclass
class DisambiguatingEmbedder:
    """Decorator embedder: disambiguate the group, then delegate.

    Wraps any :class:`SegmentEmbedder` (LCAG or TreeEmb), satisfying the
    same protocol so it drops into ``embed_document`` and the engine.
    """

    graph: KnowledgeGraph
    inner: SegmentEmbedder
    max_distance: float = 3.0

    def embed(
        self,
        label_sources: Mapping[str, frozenset[str]],
        deadline: "Deadline | None" = None,
    ) -> CommonAncestorGraph | None:
        """Embed with coherence-filtered candidate sets."""
        if not label_sources:
            return None
        filtered = disambiguate_group(
            self.graph, label_sources, self.max_distance
        )
        if deadline is None:
            return self.inner.embed(filtered)
        return self.inner.embed(filtered, deadline=deadline)
