"""News documents and corpora."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import DataError


@dataclass(frozen=True)
class NewsDocument:
    """A news document.

    Attributes:
        doc_id: unique document id.
        text: the full body text.
        title: optional headline.
        topic_id: id of the planted topic/event the document was generated
            about, or "" for noise documents; used as evaluation ground
            truth by some diagnostics (never shown to retrieval methods).
    """

    doc_id: str
    text: str
    title: str = ""
    topic_id: str = ""

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise DataError("doc_id must be non-empty")


class Corpus:
    """An ordered collection of documents with id lookup."""

    def __init__(self, documents: Iterable[NewsDocument] = ()) -> None:
        self._documents: list[NewsDocument] = []
        self._by_id: dict[str, int] = {}
        for document in documents:
            self.add(document)

    def add(self, document: NewsDocument) -> None:
        """Append ``document``; duplicate ids are rejected."""
        if document.doc_id in self._by_id:
            raise DataError(f"duplicate doc_id: {document.doc_id!r}")
        self._by_id[document.doc_id] = len(self._documents)
        self._documents.append(document)

    def get(self, doc_id: str) -> NewsDocument:
        """The document with ``doc_id``; raises ``DataError`` if missing."""
        index = self._by_id.get(doc_id)
        if index is None:
            raise DataError(f"unknown doc_id: {doc_id!r}")
        return self._documents[index]

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._by_id

    def __iter__(self) -> Iterator[NewsDocument]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def doc_ids(self) -> list[str]:
        """All document ids in corpus order."""
        return [document.doc_id for document in self._documents]

    def subset(self, doc_ids: Iterable[str]) -> "Corpus":
        """A new corpus restricted to ``doc_ids`` (in the given order)."""
        return Corpus(self.get(doc_id) for doc_id in doc_ids)
