"""Synthetic news generator (CNN / Kaggle corpus substitute).

Documents are generated from the planted topics of a synthetic world.  The
key property engineered here is **vocabulary mismatch**: two documents
about the same topic mention *different* subsets of the topic's entity
pool (controlled by ``entity_dropout``), so pure keyword methods see little
lexical overlap while the KG connects the differing entities through the
shared event/region nodes — exactly the setting of the paper's Example 1.
"""

from __future__ import annotations

import numpy as np

from repro.config import NewsConfig
from repro.data.document import Corpus, NewsDocument
from repro.data.topics import GENERAL_VOCABULARY, Topic, topics_from_world
from repro.kg.synthetic import SyntheticWorld
from repro.utils.rng import ensure_rng

# Sentence templates: {eN} slots take entity mentions, {wN} slots topical
# words and {g} general filler.  Templates never put a capitalized filler
# word anywhere but sentence-initial position.
_TEMPLATES: tuple[tuple[str, int], ...] = (
    ("{e0} said the {w0} involving {e1} would continue despite growing {w1}.", 2),
    ("Witnesses near {e0} described heavy {w0} as {e1} responded to the {w1}.", 2),
    ("The {w0} around {e0} intensified while {e1} and {e2} traded accusations.", 3),
    ("Sources close to {e0} confirmed a new {w0} after weeks of {w1}.", 1),
    ("Reports from {e0} suggested that the {w0} had spread towards {e1}.", 2),
    ("Analysts said {e0} faced mounting {w0} over the {w1} with {e1}.", 2),
    ("Officials announced that {e0} would join the {w0} amid the ongoing {w1}.", 1),
    ("Observers linked the {w0} to tensions between {e0} and {e1}.", 2),
    ("The {g} said {e0} remained central to the {w0} despite the {w1}.", 1),
    ("Supporters of {e0} gathered as news of the {w0} reached {e1}.", 2),
    ("A spokesman for {e0} declined to comment on the {w0}.", 1),
    ("Pressure grew on {e0}, {e1} and {e2} as the {w0} entered a new phase.", 3),
)

_OFFTOPIC_TEMPLATES: tuple[str, ...] = (
    "Commentators noted that the wider {w0} showed no sign of easing.",
    "The {g} added that further {w0} was expected later in the week.",
    "Local {g} voiced {w0} about the pace of the official {w1}.",
    "Regional media carried extensive {w0} on the unfolding {w1}.",
)


class NewsGenerator:
    """Generates a news corpus coupled to a synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        config: NewsConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self._world = world
        self._config = config or NewsConfig()
        self._rng = ensure_rng(self._config.seed if rng is None else rng)
        self._topics = topics_from_world(world)
        if not self._topics:
            raise ValueError("world has no events to build topics from")
        # Pool of arbitrary mentionable nodes for noise documents.
        self._noise_pool = [
            *world.persons,
            *world.cities,
            *world.organizations,
        ]
        # Out-of-KG names: identified by NER but never matched — the reason
        # the Table V ratio sits below 100%.  The suffixes are disjoint from
        # the world generator's so they cannot collide with real labels.
        self._unknown_names = [
            f"{prefix}{suffix}"
            for prefix in ("Xan", "Yev", "Zul", "Qor", "Vrin", "Ost")
            for suffix in ("heim", "dale", "croft", "wyck")
        ]

    @property
    def topics(self) -> list[Topic]:
        """The topics documents are generated about."""
        return self._topics

    # ------------------------------------------------------------------
    def generate(self) -> Corpus:
        """Generate the full corpus per the configuration."""
        corpus = Corpus()
        num_noise = int(round(self._config.num_documents * self._config.noise_doc_fraction))
        num_topical = self._config.num_documents - num_noise
        for index in range(num_topical):
            topic = self._topics[int(self._rng.integers(len(self._topics)))]
            corpus.add(self.generate_document(f"doc{index:05d}", topic))
        for index in range(num_topical, self._config.num_documents):
            corpus.add(self._generate_noise_document(f"doc{index:05d}"))
        return corpus

    def generate_document(self, doc_id: str, topic: Topic) -> NewsDocument:
        """Generate one document about ``topic``.

        The document's mentionable entity subset is drawn once with
        ``entity_dropout``, so different documents about the same topic
        mention different entities.
        """
        kept = self._document_entity_subset(topic)
        num_sentences = int(
            self._rng.integers(
                self._config.sentences_per_doc[0],
                self._config.sentences_per_doc[1] + 1,
            )
        )
        sentences = [
            self._sentence(topic.vocabulary, kept)
            for _ in range(num_sentences)
        ]
        title = self._title(topic, kept)
        return NewsDocument(
            doc_id=doc_id,
            text=" ".join(sentences),
            title=title,
            topic_id=topic.topic_id,
        )

    # ------------------------------------------------------------------
    def _document_entity_subset(self, topic: Topic) -> list[str]:
        kept = [
            node_id
            for node_id in topic.mention_pool
            if self._rng.random() >= self._config.entity_dropout
        ]
        if not kept:
            # Always keep at least one core entity so the document is
            # embeddable and on-topic.
            core = list(topic.core_ids) or list(topic.mention_pool)
            kept = [core[int(self._rng.integers(len(core)))]]
        return kept

    def _mention(self, node_id: str, unknown_probability: float = 0.0) -> str:
        if self._rng.random() < unknown_probability:
            return self._unknown_names[
                int(self._rng.integers(len(self._unknown_names)))
            ]
        node = self._world.graph.node(node_id)
        # Aliases create the paper's vocabulary mismatch: "Vallini" and
        # "Jorro Vallini" are different index terms for BM25 but resolve to
        # the same KG node for the BON channel.
        if node.aliases and self._rng.random() < 0.3:
            return node.aliases[0]
        return node.label

    def _pick_words(self, vocabulary: tuple[str, ...], count: int) -> list[str]:
        indexes = self._rng.choice(len(vocabulary), size=count, replace=False)
        return [vocabulary[int(i)] for i in indexes]

    def _sentence(
        self,
        vocabulary: tuple[str, ...],
        kept: list[str],
        unknown_probability: float = 0.0,
    ) -> str:
        if self._rng.random() < self._config.offtopic_probability:
            template = _OFFTOPIC_TEMPLATES[
                int(self._rng.integers(len(_OFFTOPIC_TEMPLATES)))
            ]
            return self._fill(template, [], vocabulary)
        max_entities = min(
            len(kept), self._config.entities_per_sentence[1]
        )
        eligible = [
            (template, needed)
            for template, needed in _TEMPLATES
            if needed <= max_entities
        ]
        if not eligible:
            template = _OFFTOPIC_TEMPLATES[0]
            return self._fill(template, [], vocabulary)
        template, needed = eligible[int(self._rng.integers(len(eligible)))]
        chosen = self._rng.choice(len(kept), size=needed, replace=False)
        mentions = [
            self._mention(kept[int(i)], unknown_probability) for i in chosen
        ]
        return self._fill(template, mentions, vocabulary)

    def _fill(
        self, template: str, mentions: list[str], vocabulary: tuple[str, ...]
    ) -> str:
        words = self._pick_words(vocabulary, 3)
        general = GENERAL_VOCABULARY[
            int(self._rng.integers(len(GENERAL_VOCABULARY)))
        ]
        values = {
            "g": general,
            "w0": words[0],
            "w1": words[1],
            "w2": words[2],
        }
        for index, mention in enumerate(mentions):
            values[f"e{index}"] = mention
        return template.format(**values)

    def _title(self, topic: Topic, kept: list[str]) -> str:
        word = topic.vocabulary[int(self._rng.integers(len(topic.vocabulary)))]
        anchor = self._mention(kept[int(self._rng.integers(len(kept)))])
        return f"{word.capitalize()} developments around {anchor}"

    def _generate_noise_document(self, doc_id: str) -> NewsDocument:
        """A document about no planted topic: random entities + filler."""
        num_sentences = int(
            self._rng.integers(
                self._config.sentences_per_doc[0],
                self._config.sentences_per_doc[1] + 1,
            )
        )
        picks = self._rng.choice(
            len(self._noise_pool),
            size=min(4, len(self._noise_pool)),
            replace=False,
        )
        kept = [self._noise_pool[int(i)] for i in picks]
        vocabulary = GENERAL_VOCABULARY
        # Unknown (out-of-KG) names are confined to noise documents: they
        # keep the Table V matching ratio below 100% without starving the
        # topical queries of KG signal.  The multiplier makes the handful
        # of noise documents carry a visible share of unmatched mentions.
        unknown_probability = min(
            0.9, self._config.unknown_entity_probability * 8
        )
        sentences = [
            self._sentence(vocabulary, kept, unknown_probability)
            for _ in range(num_sentences)
        ]
        return NewsDocument(
            doc_id=doc_id,
            text=" ".join(sentences),
            title="General developments",
            topic_id="",
        )


def generate_corpus(
    world: SyntheticWorld,
    config: NewsConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> Corpus:
    """Convenience wrapper: generate a corpus for ``world``."""
    return NewsGenerator(world, config, rng).generate()
