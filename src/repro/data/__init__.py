"""Corpus substrate: documents, splits, topics and the synthetic news
generator that stands in for the paper's CNN and Kaggle datasets.
"""

from repro.data.document import NewsDocument, Corpus
from repro.data.splits import SplitCorpus, split_corpus
from repro.data.topics import Topic, topics_from_world
from repro.data.synthetic_news import NewsGenerator, generate_corpus
from repro.data.datasets import (
    DatasetBundle,
    make_dataset,
    cnn_like_config,
    kaggle_like_config,
)
from repro.data.loaders import save_corpus_jsonl, load_corpus_jsonl
from repro.data.sessions import UserSessionCase, generate_user_sessions

__all__ = [
    "UserSessionCase",
    "generate_user_sessions",
    "save_corpus_jsonl",
    "load_corpus_jsonl",
    "NewsDocument",
    "Corpus",
    "SplitCorpus",
    "split_corpus",
    "Topic",
    "topics_from_world",
    "NewsGenerator",
    "generate_corpus",
    "DatasetBundle",
    "make_dataset",
    "cnn_like_config",
    "kaggle_like_config",
]
