"""Canned dataset configurations mirroring the paper's two corpora.

The paper evaluates on CNN (92,580 docs) and Kaggle "All the News"
(90,130 docs).  Offline we generate two datasets with the same *contrast*:
the kaggle-like corpus is noisier (more noise documents, heavier entity
dropout), which is where subgraph context buys the most — matching the
larger NewsLink-vs-baselines HIT gap the paper reports on Kaggle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import EvalConfig, NewsConfig, WorldConfig
from repro.data.document import Corpus
from repro.data.splits import SplitCorpus, split_corpus
from repro.data.synthetic_news import generate_corpus
from repro.data.topics import Topic, topics_from_world
from repro.kg.synthetic import SyntheticWorld, generate_world
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class DatasetBundle:
    """Everything one evaluation run needs.

    Attributes:
        name: dataset name ("cnn-like" / "kaggle-like" / custom).
        world: the synthetic world whose KG documents are embedded into.
        corpus: the full generated news corpus.
        split: the 80/10/10 train/validation/test split.
        topics: the planted topics.
    """

    name: str
    world: SyntheticWorld
    corpus: Corpus
    split: SplitCorpus
    topics: tuple[Topic, ...]


def cnn_like_config(scale: float = 1.0) -> tuple[WorldConfig, NewsConfig]:
    """The cleaner, CNN-like dataset configuration."""
    world = WorldConfig(
        num_countries=max(2, int(6 * scale)),
        provinces_per_country=4,
        cities_per_province=4,
        num_organizations=max(5, int(24 * scale)),
        num_persons=max(10, int(65 * scale)),
        num_events=max(8, int(36 * scale)),
        extra_edges=max(10, int(80 * scale)),
        seed=11,
    )
    news = NewsConfig(
        num_documents=max(40, int(320 * scale)),
        sentences_per_doc=(6, 12),
        entity_dropout=0.50,
        noise_doc_fraction=0.08,
        offtopic_probability=0.12,
        unknown_entity_probability=0.015,
        seed=12,
    )
    return world, news


def kaggle_like_config(scale: float = 1.0) -> tuple[WorldConfig, NewsConfig]:
    """The noisier, Kaggle-like dataset configuration."""
    world = WorldConfig(
        num_countries=max(2, int(5 * scale)),
        provinces_per_country=5,
        cities_per_province=3,
        num_organizations=max(5, int(20 * scale)),
        num_persons=max(10, int(55 * scale)),
        num_events=max(8, int(30 * scale)),
        extra_edges=max(10, int(100 * scale)),
        seed=21,
    )
    news = NewsConfig(
        num_documents=max(40, int(300 * scale)),
        sentences_per_doc=(6, 14),
        entity_dropout=0.55,
        noise_doc_fraction=0.15,
        offtopic_probability=0.25,
        unknown_entity_probability=0.02,
        seed=22,
    )
    return world, news


def make_dataset(
    name: str,
    world_config: WorldConfig,
    news_config: NewsConfig,
    eval_config: EvalConfig | None = None,
) -> DatasetBundle:
    """Generate a :class:`DatasetBundle` deterministically."""
    eval_config = eval_config or EvalConfig()
    world_rng, news_rng, split_rng = spawn_rngs(world_config.seed, 3)
    world = generate_world(world_config, rng=world_rng)
    corpus = generate_corpus(world, news_config, rng=news_rng)
    split = split_corpus(
        corpus,
        test_fraction=eval_config.test_fraction,
        validation_fraction=eval_config.validation_fraction,
        rng=split_rng,
    )
    return DatasetBundle(
        name=name,
        world=world,
        corpus=corpus,
        split=split,
        topics=tuple(topics_from_world(world)),
    )
