"""Topics: the coupling between planted KG events and news vocabulary.

Each synthetic-world event becomes a news *topic*: documents about the
topic mention subsets of the event's KG neighbourhood and use the topic
kind's vocabulary.  Entities vary document-to-document (the vocabulary
mismatch the paper's robustness claim targets); the vocabulary provides
the textual signal lexical baselines rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.synthetic import EventSpec, SyntheticWorld

#: Per-kind topical vocabulary (lowercase so the NER never fires on it).
KIND_VOCABULARY: dict[str, tuple[str, ...]] = {
    "conflict": (
        "militants", "offensive", "airstrike", "ceasefire", "troops",
        "casualties", "insurgents", "shelling", "security", "forces",
        "bombing", "checkpoint", "clashes", "stronghold",
    ),
    "election": (
        "voters", "ballot", "campaign", "polls", "primary", "debate",
        "turnout", "candidacy", "rally", "manifesto", "incumbent",
        "landslide", "coalition", "electorate",
    ),
    "tournament": (
        "match", "finals", "league", "goal", "coach", "stadium", "season",
        "victory", "supporters", "fixture", "penalty", "title", "squad",
        "championship",
    ),
    "summit": (
        "talks", "delegation", "agreement", "sanctions", "negotiations",
        "treaty", "diplomats", "cooperation", "communique", "accord",
        "bilateral", "envoys", "summitry", "protocol",
    ),
    "merger": (
        "shares", "acquisition", "deal", "regulators", "shareholders",
        "markets", "billions", "takeover", "antitrust", "valuation",
        "synergies", "bid", "stockholders", "divestiture",
    ),
    "scandal": (
        "investigation", "charges", "probe", "corruption", "allegations",
        "prosecutor", "testimony", "indictment", "resignation", "bribery",
        "subpoena", "misconduct", "whistleblower", "coverup",
    ),
}

#: Kind-agnostic newswire filler (lowercase).
GENERAL_VOCABULARY: tuple[str, ...] = (
    "officials", "reported", "according", "statement", "sources",
    "government", "crisis", "response", "meeting", "announced",
    "spokesman", "witnesses", "analysts", "reports", "situation",
    "developments", "authorities", "residents", "pressure", "concerns",
)


@dataclass(frozen=True)
class Topic:
    """A news topic derived from one planted event.

    Attributes:
        topic_id: equals the event's KG node id.
        kind: event kind (conflict, election, ...).
        name: the event node's label.
        mention_pool: node ids whose labels documents may mention.
        core_ids: the characteristic participant subset.
        vocabulary: the kind's topical word list.
    """

    topic_id: str
    kind: str
    name: str
    mention_pool: tuple[str, ...]
    core_ids: tuple[str, ...]
    vocabulary: tuple[str, ...]

    @classmethod
    def from_event(cls, event: EventSpec) -> "Topic":
        """Build the topic for ``event``."""
        return cls(
            topic_id=event.event_id,
            kind=event.kind,
            name=event.name,
            mention_pool=event.mention_pool,
            core_ids=event.core_ids,
            vocabulary=KIND_VOCABULARY[event.kind],
        )


def topics_from_world(world: SyntheticWorld) -> list[Topic]:
    """All topics of a synthetic world, one per planted event."""
    return [Topic.from_event(event) for event in world.events]
