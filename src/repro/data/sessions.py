"""Synthetic user sessions: a seeded click model over planted topics.

The personalization evaluation needs users with *coherent* interests and
ground truth about what they would click next.  A synthetic world gives
both for free: every non-noise document carries the ``topic_id`` of the
planted event it was written about, so a user is modeled as an interest
in one topic — their click history is a sample of that topic's documents
and the *held-out* on-topic documents are the relevance labels a
personalized ranking should surface (``repro.eval.personalization``
scores exactly that).

Session turns are short, deliberately underspecified queries drawn from
the topic's entity mentions and vocabulary — the kind of follow-up
("<entity> unrest") whose best answer depends on which conversation it
appears in.  Everything is driven by one ``random.Random(seed)``: the
same dataset and seed always produce the same users, clicks and turns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.datasets import DatasetBundle
from repro.data.document import NewsDocument


@dataclass(frozen=True)
class UserSessionCase:
    """One simulated user: interest topic, history, labels, and turns.

    Attributes:
        user_id: stable synthetic id ("u000", "u001", ...).
        topic_id: the planted event this user reads about.
        history_clicks: doc ids the user clicked before evaluation —
            these build the :class:`repro.personalize.UserProfile`.
        held_out_clicks: on-topic doc ids *not* in the history; the
            relevance labels the personalized ranking should recover.
        queries: the session's turn queries, oldest first.
    """

    user_id: str
    topic_id: str
    history_clicks: tuple[str, ...]
    held_out_clicks: tuple[str, ...]
    queries: tuple[str, ...]


def _topic_documents(dataset: DatasetBundle) -> dict[str, list[NewsDocument]]:
    by_topic: dict[str, list[NewsDocument]] = {}
    for doc in dataset.corpus:
        if doc.topic_id:
            by_topic.setdefault(doc.topic_id, []).append(doc)
    return by_topic


def _turn_queries(
    dataset: DatasetBundle,
    topic,
    rng: random.Random,
    num_turns: int,
) -> tuple[str, ...]:
    """Short ambiguous queries: one entity mention + one topical word."""
    labels = [
        dataset.world.graph.node(node_id).label
        for node_id in topic.mention_pool
    ]
    queries = []
    for _ in range(num_turns):
        label = rng.choice(labels)
        word = rng.choice(topic.vocabulary)
        queries.append(f"{label} {word}")
    return tuple(queries)


def generate_user_sessions(
    dataset: DatasetBundle,
    num_users: int = 8,
    history_clicks: int = 4,
    held_out_clicks: int = 3,
    num_turns: int = 3,
    seed: int = 0,
) -> list[UserSessionCase]:
    """Simulated users with seeded click histories and session turns.

    Each user is assigned a topic (round-robin over topics with enough
    documents, topic order shuffled by ``seed``), clicks a random sample
    of its documents, and holds out a disjoint on-topic sample as
    relevance labels.  Deterministic for a given ``(dataset, seed)``.

    Raises ``ValueError`` when no topic has
    ``history_clicks + held_out_clicks`` documents to split.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    if history_clicks <= 0 or held_out_clicks <= 0:
        raise ValueError("click counts must be positive")
    rng = random.Random(seed)
    by_topic = _topic_documents(dataset)
    topics = [
        topic
        for topic in dataset.topics
        if len(by_topic.get(topic.topic_id, []))
        >= history_clicks + held_out_clicks
    ]
    if not topics:
        raise ValueError(
            "no topic has enough documents for "
            f"{history_clicks} history + {held_out_clicks} held-out clicks"
        )
    rng.shuffle(topics)
    cases: list[UserSessionCase] = []
    for index in range(num_users):
        topic = topics[index % len(topics)]
        docs = [doc.doc_id for doc in by_topic[topic.topic_id]]
        rng.shuffle(docs)
        history = tuple(docs[:history_clicks])
        held_out = tuple(docs[history_clicks:history_clicks + held_out_clicks])
        cases.append(
            UserSessionCase(
                user_id=f"u{index:03d}",
                topic_id=topic.topic_id,
                history_clicks=history,
                held_out_clicks=held_out,
                queries=_turn_queries(dataset, topic, rng, num_turns),
            )
        )
    return cases
