"""Corpus serialization: JSONL (one document per line)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.document import Corpus, NewsDocument
from repro.errors import DataError


def save_corpus_jsonl(corpus: Corpus, path: str | Path) -> None:
    """Write ``corpus`` as JSON lines."""
    lines = [
        json.dumps(
            {
                "doc_id": document.doc_id,
                "text": document.text,
                "title": document.title,
                "topic_id": document.topic_id,
            }
        )
        for document in corpus
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_corpus_jsonl(path: str | Path) -> Corpus:
    """Load a corpus written by :func:`save_corpus_jsonl`.

    Extra fields are ignored; ``doc_id`` and ``text`` are required.
    """
    corpus = Corpus()
    text = Path(path).read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DataError(f"{path}:{line_number}: invalid JSON") from exc
        try:
            corpus.add(
                NewsDocument(
                    doc_id=str(record["doc_id"]),
                    text=str(record["text"]),
                    title=str(record.get("title", "")),
                    topic_id=str(record.get("topic_id", "")),
                )
            )
        except KeyError as exc:
            raise DataError(
                f"{path}:{line_number}: document record missing field {exc}"
            ) from exc
    return corpus
