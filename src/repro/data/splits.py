"""Train / validation / test splitting (paper §VII-A3: 80/10/10)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.document import Corpus
from repro.errors import ConfigError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SplitCorpus:
    """A random split of a corpus.

    Attributes:
        train: documents used to fit trainable competitors (DOC2VEC, LDA).
        validation: documents held out for tuning.
        test: documents whose sentences become evaluation queries.
    """

    train: Corpus
    validation: Corpus
    test: Corpus

    @property
    def full(self) -> Corpus:
        """The full searchable corpus (train + validation + test).

        Retrieval always runs against the whole corpus — HIT@k asks whether
        the *test* document is recovered from it.
        """
        documents = list(self.train) + list(self.validation) + list(self.test)
        return Corpus(documents)


def split_corpus(
    corpus: Corpus,
    test_fraction: float = 0.1,
    validation_fraction: float = 0.1,
    rng: int | np.random.Generator | None = 0,
) -> SplitCorpus:
    """Randomly split ``corpus`` into train/validation/test."""
    if test_fraction + validation_fraction >= 1.0:
        raise ConfigError("test + validation fractions must sum below 1")
    generator = ensure_rng(rng)
    doc_ids = corpus.doc_ids()
    order = generator.permutation(len(doc_ids))
    num_test = max(1, int(round(len(doc_ids) * test_fraction)))
    num_validation = max(1, int(round(len(doc_ids) * validation_fraction)))
    test_ids = [doc_ids[i] for i in order[:num_test]]
    validation_ids = [doc_ids[i] for i in order[num_test : num_test + num_validation]]
    train_ids = [doc_ids[i] for i in order[num_test + num_validation :]]
    return SplitCorpus(
        train=corpus.subset(train_ids),
        validation=corpus.subset(validation_ids),
        test=corpus.subset(test_ids),
    )
