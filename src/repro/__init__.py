"""NewsLink reproduction: intuitive news search with knowledge graphs.

A from-scratch Python implementation of *NewsLink: Empowering Intuitive
News Search with Knowledge Graphs* (Yang, Li & Tung, ICDE 2021) — the
Lowest Common Ancestor Graph subgraph-embedding model, the full
NLP/NE/NS architecture, every baseline the paper compares against, and a
benchmark per table and figure of the paper's evaluation.

Quick start::

    from repro import NewsLinkEngine, make_dataset, cnn_like_config

    world_cfg, news_cfg = cnn_like_config(scale=0.3)
    dataset = make_dataset("cnn-like", world_cfg, news_cfg)
    engine = NewsLinkEngine(dataset.world.graph)
    engine.index_corpus(dataset.corpus)
    for result in engine.search("some partial news text", k=5):
        print(result.doc_id, result.score)
        print(engine.explain_verbalized("some partial news text", result.doc_id))
"""

from repro.config import (
    Bm25Config,
    Doc2VecConfig,
    EngineConfig,
    EvalConfig,
    FastTextConfig,
    FusionConfig,
    LcagConfig,
    LdaConfig,
    NerConfig,
    NewsConfig,
    QeprfConfig,
    SbertConfig,
    TreeEmbConfig,
    WorldConfig,
)
from repro.kg import KnowledgeGraph, LabelIndex, Node, Edge, EntityType, generate_world
from repro.nlp import NlpPipeline
from repro.core import (
    CommonAncestorGraph,
    LcagEmbedder,
    TreeEmbedder,
    DocumentEmbedding,
    find_lcag,
    find_gst_tree,
    embed_document,
    explain_pair,
    verbalize_path,
)
from repro.search import NewsLinkEngine, SearchResult
from repro.parallel import IndexPlan, IndexReport, index_corpus_parallel
from repro.data import (
    NewsDocument,
    Corpus,
    make_dataset,
    cnn_like_config,
    kaggle_like_config,
)
from repro.eval import EvaluationHarness, NewsLinkRetriever, FastTextModel
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Bm25Config",
    "Doc2VecConfig",
    "EngineConfig",
    "EvalConfig",
    "FastTextConfig",
    "FusionConfig",
    "LcagConfig",
    "LdaConfig",
    "NerConfig",
    "NewsConfig",
    "QeprfConfig",
    "SbertConfig",
    "TreeEmbConfig",
    "WorldConfig",
    "KnowledgeGraph",
    "LabelIndex",
    "Node",
    "Edge",
    "EntityType",
    "generate_world",
    "NlpPipeline",
    "CommonAncestorGraph",
    "LcagEmbedder",
    "TreeEmbedder",
    "DocumentEmbedding",
    "find_lcag",
    "find_gst_tree",
    "embed_document",
    "explain_pair",
    "verbalize_path",
    "NewsLinkEngine",
    "SearchResult",
    "IndexPlan",
    "IndexReport",
    "index_corpus_parallel",
    "NewsDocument",
    "Corpus",
    "make_dataset",
    "cnn_like_config",
    "kaggle_like_config",
    "EvaluationHarness",
    "NewsLinkRetriever",
    "FastTextModel",
    "ReproError",
    "__version__",
]
